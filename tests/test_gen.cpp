#include <gtest/gtest.h>

#include "brute_force.hpp"
#include "gen/circuit.hpp"
#include "gen/dataset.hpp"
#include "gen/generators.hpp"

namespace ns::gen {
namespace {

// --- random k-SAT ---------------------------------------------------------

TEST(RandomKsatTest, ProducesRequestedShape) {
  const CnfFormula f = random_ksat(50, 200, 3, 42);
  EXPECT_EQ(f.num_vars(), 50u);
  EXPECT_EQ(f.num_clauses(), 200u);
  for (const Clause& c : f.clauses()) EXPECT_EQ(c.size(), 3u);
}

TEST(RandomKsatTest, DeterministicInSeed) {
  const CnfFormula a = random_ksat(30, 100, 3, 7);
  const CnfFormula b = random_ksat(30, 100, 3, 7);
  ASSERT_EQ(a.num_clauses(), b.num_clauses());
  for (std::size_t i = 0; i < a.num_clauses(); ++i) {
    EXPECT_EQ(a.clause(i), b.clause(i));
  }
}

TEST(RandomKsatTest, DifferentSeedsDiffer) {
  const CnfFormula a = random_ksat(30, 100, 3, 7);
  const CnfFormula b = random_ksat(30, 100, 3, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_clauses() && !any_diff; ++i) {
    any_diff = a.clause(i) != b.clause(i);
  }
  EXPECT_TRUE(any_diff);
}

// --- pigeonhole -------------------------------------------------------------

TEST(PigeonholeTest, TightInstanceIsSatisfiable) {
  const CnfFormula f = pigeonhole(3, 3);
  EXPECT_TRUE(testing::brute_force_solve(f).has_value());
}

TEST(PigeonholeTest, OverfullInstanceIsUnsat) {
  const CnfFormula f = pigeonhole(4, 3);
  EXPECT_FALSE(testing::brute_force_solve(f).has_value());
}

TEST(PigeonholeTest, ClauseCountMatchesConstruction) {
  const std::size_t p = 5, h = 4;
  const CnfFormula f = pigeonhole(p, h);
  // p at-least-one clauses + h * C(p,2) at-most-one clauses.
  EXPECT_EQ(f.num_clauses(), p + h * (p * (p - 1) / 2));
  EXPECT_EQ(f.num_vars(), p * h);
}

// --- graph colouring --------------------------------------------------------

TEST(GraphColoringTest, EmptyGraphIsColourable) {
  const CnfFormula f = graph_coloring(5, 0.0, 2, 1);
  EXPECT_TRUE(testing::brute_force_solve(f).has_value());
}

TEST(GraphColoringTest, CompleteGraphNeedsAsManyColours) {
  // K4 with 3 colours is UNSAT (12 vars: brute force ok).
  const CnfFormula f = graph_coloring(4, 1.0, 3, 1);
  EXPECT_FALSE(testing::brute_force_solve(f).has_value());
  // K4 with 4 colours is SAT but has 16 vars; skip brute force there.
}

// --- xor chains -------------------------------------------------------------

TEST(XorChainTest, ConsistentChainSatisfiable) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CnfFormula f = xor_chain(12, /*contradictory=*/false, seed);
    EXPECT_TRUE(testing::brute_force_solve(f).has_value()) << seed;
  }
}

TEST(XorChainTest, ContradictoryChainUnsat) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CnfFormula f = xor_chain(12, /*contradictory=*/true, seed);
    EXPECT_FALSE(testing::brute_force_solve(f).has_value()) << seed;
  }
}

// --- community SAT ----------------------------------------------------------

TEST(CommunitySatTest, RespectsShapeAndDeterminism) {
  const CnfFormula a = community_sat(60, 200, 5, 0.8, 9);
  const CnfFormula b = community_sat(60, 200, 5, 0.8, 9);
  EXPECT_EQ(a.num_vars(), 60u);
  EXPECT_EQ(a.num_clauses(), 200u);
  for (std::size_t i = 0; i < a.num_clauses(); ++i) {
    EXPECT_EQ(a.clause(i), b.clause(i));
  }
}

// --- circuits ----------------------------------------------------------------

TEST(CircuitTest, SimulateBasicGates) {
  Circuit c;
  const Signal a = c.add_input();
  const Signal b = c.add_input();
  const Signal x = c.add_xor(a, b);
  const Signal n = c.add_not(a);
  const Signal o = c.add_or(x, n);
  c.mark_output(o);
  const auto v = c.simulate({true, false});
  EXPECT_TRUE(v[x]);   // 1 ^ 0
  EXPECT_FALSE(v[n]);  // !1
  EXPECT_TRUE(v[o]);
}

TEST(CircuitTest, AdderMatchesArithmetic) {
  const std::size_t bits = 4;
  const Circuit add = ripple_carry_adder(bits);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      std::vector<bool> in;
      for (std::size_t i = 0; i < bits; ++i) in.push_back((a >> i) & 1);
      for (std::size_t i = 0; i < bits; ++i) in.push_back((b >> i) & 1);
      const auto v = add.simulate(in);
      unsigned sum = 0;
      for (std::size_t i = 0; i <= bits; ++i) {
        sum |= static_cast<unsigned>(v[add.outputs()[i]]) << i;
      }
      EXPECT_EQ(sum, a + b) << a << "+" << b;
    }
  }
}

TEST(CircuitTest, AlternativeAdderEquivalentUnlessBugged) {
  const std::size_t bits = 3;
  const Circuit ref = ripple_carry_adder(bits);
  const Circuit alt = alternative_adder(bits, /*inject_bug=*/false);
  const Circuit bug = alternative_adder(bits, /*inject_bug=*/true);
  bool bug_differs = false;
  for (unsigned in_bits = 0; in_bits < (1u << (2 * bits)); ++in_bits) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < 2 * bits; ++i) in.push_back((in_bits >> i) & 1);
    const auto vr = ref.simulate(in);
    const auto va = alt.simulate(in);
    const auto vb = bug.simulate(in);
    for (std::size_t o = 0; o <= bits; ++o) {
      EXPECT_EQ(vr[ref.outputs()[o]], va[alt.outputs()[o]]);
      if (vr[ref.outputs()[o]] != vb[bug.outputs()[o]]) bug_differs = true;
    }
  }
  EXPECT_TRUE(bug_differs);
}

TEST(CircuitTest, TseitinEncodingPreservesSemantics) {
  // For the 2-bit adder: CNF plus pinned inputs must be satisfiable exactly
  // with the simulated output values.
  const Circuit add = ripple_carry_adder(2);
  CnfFormula f;
  const std::vector<Var> var_of = add.tseitin_encode(f);
  // Pin inputs a=3 (11), b=1 (01).
  const std::vector<bool> in = {true, true, true, false};
  for (std::size_t i = 0; i < add.num_inputs(); ++i) {
    f.add_clause({Lit(var_of[add.inputs()[i]], !in[i])});
  }
  const auto model = testing::brute_force_solve(f);
  ASSERT_TRUE(model.has_value());
  const auto sim = add.simulate(in);
  for (const Signal s : add.outputs()) {
    EXPECT_EQ((*model)[var_of[s]], sim[s]);
  }
}

namespace {

Circuit xor_direct() {
  Circuit c;
  const Signal a = c.add_input();
  const Signal b = c.add_input();
  c.mark_output(c.add_xor(a, b));
  return c;
}

Circuit xor_from_and_or(bool buggy) {
  Circuit c;
  const Signal a = c.add_input();
  const Signal b = c.add_input();
  const Signal o = c.add_or(a, b);
  const Signal n = c.add_not(c.add_and(a, b));
  c.mark_output(buggy ? o : c.add_and(o, n));
  return c;
}

}  // namespace

TEST(MiterTest, EquivalentCircuitsGiveUnsatMiter) {
  const CnfFormula f = miter_cnf(xor_direct(), xor_from_and_or(false));
  EXPECT_FALSE(testing::brute_force_solve(f).has_value());
}

TEST(MiterTest, BuggedCircuitGivesSatMiter) {
  const CnfFormula f = miter_cnf(xor_direct(), xor_from_and_or(true));
  EXPECT_TRUE(testing::brute_force_solve(f).has_value());
}

TEST(ParityCircuitTest, ChainAndTreeComputeParity) {
  for (const std::size_t width : {3u, 5u, 8u}) {
    const Circuit chain = parity_chain(width);
    const Circuit tree = parity_tree(width, /*inject_bug=*/false);
    for (unsigned bits = 0; bits < (1u << width); ++bits) {
      std::vector<bool> in;
      bool parity = false;
      for (std::size_t i = 0; i < width; ++i) {
        const bool b = (bits >> i) & 1;
        in.push_back(b);
        parity ^= b;
      }
      EXPECT_EQ(chain.simulate(in)[chain.outputs()[0]], parity);
      EXPECT_EQ(tree.simulate(in)[tree.outputs()[0]], parity);
    }
  }
}

TEST(ParityCircuitTest, BuggedTreeDiffersSomewhere) {
  const std::size_t width = 6;
  const Circuit good = parity_tree(width, false);
  const Circuit bad = parity_tree(width, true);
  bool differs = false;
  for (unsigned bits = 0; bits < (1u << width) && !differs; ++bits) {
    std::vector<bool> in;
    for (std::size_t i = 0; i < width; ++i) in.push_back((bits >> i) & 1);
    differs = good.simulate(in)[good.outputs()[0]] !=
              bad.simulate(in)[bad.outputs()[0]];
  }
  EXPECT_TRUE(differs);
}

TEST(ParityEquivalenceTest, MiterStatusMatchesBugFlag) {
  // Small widths are brute-forcible through the solver-independent oracle.
  const CnfFormula unsat = parity_equivalence(4, /*inject_bug=*/false, 3);
  const CnfFormula sat = parity_equivalence(4, /*inject_bug=*/true, 3);
  EXPECT_FALSE(testing::brute_force_solve(unsat).has_value());
  EXPECT_TRUE(testing::brute_force_solve(sat).has_value());
}

TEST(ScrambleTest, PreservesShapeAndChangesOrder) {
  const CnfFormula f = pigeonhole(4, 3);
  const CnfFormula g = scramble(f, 9);
  EXPECT_EQ(g.num_vars(), f.num_vars());
  EXPECT_EQ(g.num_clauses(), f.num_clauses());
  EXPECT_EQ(g.num_literals(), f.num_literals());
  bool any_diff = false;
  for (std::size_t i = 0; i < f.num_clauses() && !any_diff; ++i) {
    any_diff = f.clause(i) != g.clause(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScrambleTest, DeterministicInSeed) {
  const CnfFormula f = pigeonhole(4, 3);
  const CnfFormula a = scramble(f, 5);
  const CnfFormula b = scramble(f, 5);
  for (std::size_t i = 0; i < a.num_clauses(); ++i) {
    EXPECT_EQ(a.clause(i), b.clause(i));
  }
}

// --- dataset -----------------------------------------------------------------

TEST(DatasetTest, SplitIsDeterministicAndNamed) {
  const auto a = generate_split(2022, 12, 5);
  const auto b = generate_split(2022, 12, 5);
  ASSERT_EQ(a.size(), 12u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].formula.num_clauses(), b[i].formula.num_clauses());
    EXPECT_NE(a[i].name.find("2022/"), std::string::npos);
  }
}

TEST(DatasetTest, SplitsForDifferentYearsDiffer) {
  const auto a = generate_split(2016, 6, 5);
  const auto b = generate_split(2017, 6, 5);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].formula.num_clauses() != b[i].formula.num_clauses()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, BuildDatasetHasSevenSplits) {
  const Dataset ds = build_dataset(6, 3);
  EXPECT_EQ(ds.split_stats.size(), 7u);
  EXPECT_EQ(ds.train.size(), 36u);
  EXPECT_EQ(ds.test.size(), 6u);
  EXPECT_EQ(ds.split_stats.back().year, 2022);
  for (const SplitStats& st : ds.split_stats) {
    EXPECT_GT(st.avg_vars, 0.0);
    EXPECT_GT(st.avg_clauses, 0.0);
  }
}

TEST(DatasetTest, ComputeStatsAveragesCorrectly) {
  std::vector<NamedInstance> split;
  NamedInstance i1{"a", "fam", CnfFormula(10)};
  i1.formula.add_clause({Lit(0, false)});
  NamedInstance i2{"b", "fam", CnfFormula(20)};
  i2.formula.add_clause({Lit(0, false)});
  i2.formula.add_clause({Lit(1, false)});
  i2.formula.add_clause({Lit(2, false)});
  split.push_back(std::move(i1));
  split.push_back(std::move(i2));
  const SplitStats st = compute_stats(2020, split);
  EXPECT_EQ(st.num_cnfs, 2u);
  EXPECT_DOUBLE_EQ(st.avg_vars, 15.0);
  EXPECT_DOUBLE_EQ(st.avg_clauses, 2.0);
}

}  // namespace
}  // namespace ns::gen
