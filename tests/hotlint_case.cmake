# Negative-test driver for ns::hotlint (mirrors conlint_case.cmake): runs
# hot_lint over a seeded fixture tree under tests/fixtures/hotlint/ and
# asserts that
#   (a) the run exits nonzero, and
#   (b) the diagnostic names the expected rule ([manifest], [hot-marker],
#       [allocation], [throw], [blocking], [virtual-dispatch], or
#       [recursion]).
#
# Variables (passed via -D): HOT_LINT, ROOT, EXPECT_RULE.

foreach(required HOT_LINT ROOT EXPECT_RULE)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "hotlint_case: ${required} not set")
  endif()
endforeach()

execute_process(
  COMMAND "${HOT_LINT}" --root "${ROOT}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE res)
message(STATUS "hot_lint exit ${res}\n${out}${err}")

if(res EQUAL 0)
  message(FATAL_ERROR
      "hotlint_case: expected a [${EXPECT_RULE}] violation in ${ROOT}, "
      "but hot_lint exited 0")
endif()
if(NOT out MATCHES "\\[${EXPECT_RULE}\\]")
  message(FATAL_ERROR
      "hotlint_case: hot_lint exited ${res} but emitted no "
      "[${EXPECT_RULE}] diagnostic")
endif()
