/// \file test_solver_differential.cpp
/// Differential trajectory suite: the engine must reproduce, counter for
/// counter, the Statistics the seed (pre-refactor) engine produced on a
/// fixed grid of instances x configurations. This pins the entire search
/// trajectory — any change to visit order, heuristic state, float op
/// order, or RNG consumption shows up as a counter mismatch here long
/// before it would surface as a wrong SAT/UNSAT answer.

#include <gtest/gtest.h>

#include <vector>

#include "trajectory_corpus.hpp"

namespace ns::testing {
namespace {

const TrajectoryGolden kGolden[] = {
#include "golden_trajectory.inc"
};

class TrajectoryTest : public ::testing::TestWithParam<TrajectoryGolden> {};

TEST_P(TrajectoryTest, MatchesSeedEngineExactly) {
  const TrajectoryGolden g = GetParam();
  const auto instances = trajectory_instances();
  const auto configs = trajectory_configs();
  ASSERT_LT(g.instance, instances.size());
  ASSERT_LT(g.config, configs.size());

  const solver::SolveOutcome out = solver::solve_formula(
      instances[g.instance].second, configs[g.config].second);
  const solver::Statistics& s = out.stats;

  EXPECT_EQ(s.decisions, g.decisions);
  EXPECT_EQ(s.propagations, g.propagations);
  EXPECT_EQ(s.ticks, g.ticks);
  EXPECT_EQ(s.conflicts, g.conflicts);
  EXPECT_EQ(s.restarts, g.restarts);
  EXPECT_EQ(s.reductions, g.reductions);
  EXPECT_EQ(s.learned_clauses, g.learned_clauses);
  EXPECT_EQ(s.learned_literals, g.learned_literals);
  EXPECT_EQ(s.deleted_clauses, g.deleted_clauses);
  EXPECT_EQ(s.minimized_literals, g.minimized_literals);
  EXPECT_EQ(s.max_trail, g.max_trail);

  // Consistency of the new split counters: every watch visit is binary or
  // long, and every BCP enqueue comes from one of the two clause classes
  // (plus root-level units, which come from no watch list).
  EXPECT_EQ(s.ticks_binary + s.ticks_long, s.ticks);
  EXPECT_LE(s.propagations_binary + s.propagations_long, s.propagations);
}

std::string trajectory_name(
    const ::testing::TestParamInfo<TrajectoryGolden>& info) {
  const auto instances = trajectory_instances();
  const auto configs = trajectory_configs();
  return instances[info.param.instance].first + "__" +
         configs[info.param.config].first;
}

INSTANTIATE_TEST_SUITE_P(FullGrid, TrajectoryTest,
                         ::testing::ValuesIn(kGolden), trajectory_name);

}  // namespace
}  // namespace ns::testing
