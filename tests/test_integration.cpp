/// End-to-end pipeline integration tests: generate → label → train →
/// select → solve, plus cross-module consistency checks that would not be
/// caught by any single module's unit tests.

#include <gtest/gtest.h>

#include <sstream>

#include "cnf/dimacs.hpp"
#include "core/labeling.hpp"
#include "core/neuroselect.hpp"
#include "core/trainer.hpp"
#include "gen/dataset.hpp"
#include "gen/generators.hpp"
#include "nn/models.hpp"
#include "solver/solver.hpp"

namespace ns {
namespace {

TEST(IntegrationTest, DimacsRoundTripPreservesSolverVerdict) {
  // Serialize generated instances to DIMACS, parse back, and check the
  // solver reaches the same verdict on both copies.
  for (std::uint64_t seed : {1ull, 2ull}) {
    const CnfFormula original = gen::random_ksat(25, 106, 3, seed);
    const ParseResult parsed = parse_dimacs_string(to_dimacs_string(original));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto a = solver::solve_formula(original);
    const auto b = solver::solve_formula(parsed.formula);
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.stats.propagations, b.stats.propagations)
        << "parse round trip must be bit-identical for the solver";
  }
}

TEST(IntegrationTest, ScramblePreservesSatisfiability) {
  for (std::uint64_t seed : {3ull, 4ull, 5ull}) {
    const CnfFormula php = gen::pigeonhole(5, 4);  // UNSAT
    EXPECT_EQ(solver::solve_formula(gen::scramble(php, seed)).result,
              solver::SatResult::kUnsat);
    const CnfFormula sat = gen::pigeonhole(4, 4);  // SAT
    const CnfFormula scrambled = gen::scramble(sat, seed);
    const auto out = solver::solve_formula(scrambled);
    ASSERT_EQ(out.result, solver::SatResult::kSat);
    EXPECT_TRUE(scrambled.satisfied_by(out.model));
  }
}

TEST(IntegrationTest, ScrambleProducesDistinctInstances) {
  const CnfFormula php = gen::pigeonhole(6, 5);
  const auto a = solver::solve_formula(gen::scramble(php, 1));
  const auto b = solver::solve_formula(gen::scramble(php, 2));
  EXPECT_EQ(a.result, b.result);
  // Different isomorphs drive the heuristics differently.
  EXPECT_NE(a.stats.propagations, b.stats.propagations);
}

TEST(IntegrationTest, FullPipelineSmoke) {
  // Miniature version of the paper's whole experiment.
  gen::Dataset ds = gen::build_dataset(/*per_year=*/3, /*seed=*/41);
  ASSERT_EQ(ds.train.size(), 18u);
  ASSERT_EQ(ds.test.size(), 3u);

  core::LabelingOptions lopts;
  lopts.max_propagations = 200'000;
  const auto train = core::label_dataset(std::move(ds.train), lopts);

  nn::NeuroSelectConfig cfg;
  cfg.hidden_dim = 8;
  cfg.num_hgt_layers = 1;
  cfg.mpnn_per_hgt = 2;
  nn::NeuroSelectModel model(cfg);
  core::TrainOptions topts;
  topts.epochs = 5;
  topts.learning_rate = 1e-3f;
  const auto history = core::train_classifier(model, train, topts);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_TRUE(std::isfinite(history.back().mean_loss));

  core::EndToEndOptions eopts;
  eopts.timeout_propagations = 200'000;
  const core::EndToEndSummary summary =
      core::run_end_to_end(model, ds.test, eopts);
  ASSERT_EQ(summary.runs.size(), 3u);
  for (const core::InstanceRun& r : summary.runs) {
    EXPECT_GT(r.kissat_seconds, 0.0);
    EXPECT_GT(r.neuroselect_seconds, 0.0);
  }
  // The selector never loses solved instances relative to the baseline
  // in this deterministic setup: a default-choice run is identical to the
  // baseline, and a frequency-choice run is still budget-bounded.
  EXPECT_GE(summary.solved_neuroselect + 1, summary.solved_kissat);
}

TEST(IntegrationTest, LabellingAgreesWithDirectSolves) {
  const gen::NamedInstance inst{
      "x", "random3sat", gen::random_ksat(40, 170, 3, 77)};
  core::LabelingOptions lopts;
  const core::LabeledInstance li = core::label_instance(inst, lopts);

  solver::SolverOptions opts;
  opts.max_propagations = lopts.max_propagations;
  opts.deletion_policy = policy::PolicyKind::kDefault;
  EXPECT_EQ(solver::solve_formula(inst.formula, opts).stats.propagations,
            li.propagations_default);
  opts.deletion_policy = policy::PolicyKind::kFrequency;
  EXPECT_EQ(solver::solve_formula(inst.formula, opts).stats.propagations,
            li.propagations_frequency);
}

TEST(IntegrationTest, GraphBatchMatchesFormulaAcrossFamilies) {
  const CnfFormula formulas[] = {
      gen::pigeonhole(4, 3),
      gen::xor_chain(20, false, 1),
      gen::graph_coloring(6, 0.5, 3, 2),
      gen::adder_equivalence(3, true, 1),
  };
  for (const CnfFormula& f : formulas) {
    const nn::GraphBatch b = nn::GraphBatch::build(f);
    EXPECT_EQ(b.vc.num_vars, f.num_vars());
    EXPECT_EQ(b.vc.num_clauses, f.num_clauses());
    EXPECT_EQ(b.vc.avc.nnz(), f.num_literals());
    EXPECT_EQ(b.lc.num_lits, 2 * f.num_vars());
  }
}

}  // namespace
}  // namespace ns
