#pragma once
/// Test-only numerical gradient checking for the autograd tape.
///
/// `build` must construct the forward computation on a fresh tape using the
/// supplied parameters and return a scalar (1×1) loss tensor. The check
/// perturbs every parameter entry with central differences and compares
/// against the analytic gradient from backward().

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "nn/tape.hpp"

namespace ns::testing {

using BuildFn = std::function<nn::TensorId(nn::Tape&)>;

inline float eval_loss(const BuildFn& build) {
  nn::Tape tape;
  const nn::TensorId loss = build(tape);
  EXPECT_EQ(tape.value(loss).rows(), 1u);
  EXPECT_EQ(tape.value(loss).cols(), 1u);
  return tape.value(loss).at(0, 0);
}

/// Checks d(loss)/d(param) for every entry of every parameter.
inline void expect_gradients_match(std::vector<nn::Parameter*> params,
                                   const BuildFn& build, float eps = 5e-3f,
                                   float tol = 4e-2f) {
  // Analytic pass.
  for (nn::Parameter* p : params) p->zero_grad();
  {
    nn::Tape tape;
    const nn::TensorId loss = build(tape);
    tape.backward(loss);
  }
  // Numeric pass, entry by entry.
  std::size_t checked = 0;
  for (nn::Parameter* p : params) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value.data()[i];
      p->value.data()[i] = saved + eps;
      const float up = eval_loss(build);
      p->value.data()[i] = saved - eps;
      const float down = eval_loss(build);
      p->value.data()[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = p->grad.data()[i];
      const float scale =
          std::max({1.0f, std::abs(numeric), std::abs(analytic)});
      EXPECT_NEAR(analytic, numeric, tol * scale)
          << "param entry " << i << " (checked=" << checked << ")";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace ns::testing
