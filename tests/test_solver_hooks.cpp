/// \file test_solver_hooks.cpp
/// Engine event hooks: every event class fires with counts consistent with
/// the run's Statistics, the propagation histogram reproduces the f_v
/// totals, and the listener chain fans events out unchanged.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gen/generators.hpp"
#include "solver/solver.hpp"

namespace ns::solver {
namespace {

struct RecordingListener final : EngineListener {
  std::uint64_t assignments = 0;
  std::uint64_t propagated_assignments = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t reductions = 0;
  std::size_t deleted_total = 0;
  std::uint32_t max_glue = 0;
  bool empty_learned_seen = false;

  void on_assignment(Lit, std::uint32_t, bool propagated) override {
    ++assignments;
    if (propagated) ++propagated_assignments;
  }
  void on_conflict(std::uint64_t, std::uint32_t conflict_level,
                   std::span<const Lit> learned, std::uint32_t glue) override {
    ++conflicts;
    EXPECT_GT(conflict_level, 0u);
    if (learned.empty()) empty_learned_seen = true;
    max_glue = std::max(max_glue, glue);
  }
  void on_restart(std::uint64_t restart_count, std::uint64_t) override {
    ++restarts;
    EXPECT_EQ(restart_count, restarts);
  }
  void on_reduce(std::uint64_t reduce_count, std::size_t deleted,
                 std::size_t) override {
    ++reductions;
    EXPECT_EQ(reduce_count, reductions);
    deleted_total += deleted;
  }
};

SolverOptions busy_options() {
  SolverOptions opts;
  opts.reduce_interval = 40;   // force several reductions
  opts.restart_interval = 16;  // and several restarts
  opts.restart_mode = RestartMode::kLuby;
  return opts;
}

TEST(EngineHooksTest, EventCountsMatchStatistics) {
  const CnfFormula f = gen::pigeonhole(8, 7);
  Solver s(busy_options());
  RecordingListener rec;
  s.set_listener(&rec);
  s.load(f);
  const SolveOutcome out = s.solve();
  ASSERT_EQ(out.result, SatResult::kUnsat);

  // The final root-level conflict ends the search before analysis, so it
  // produces no on_conflict event.
  EXPECT_EQ(rec.conflicts, out.stats.conflicts - 1);
  EXPECT_FALSE(rec.empty_learned_seen);
  EXPECT_GE(rec.max_glue, 1u);
  EXPECT_EQ(rec.restarts, out.stats.restarts);
  EXPECT_GT(rec.restarts, 0u);
  EXPECT_EQ(rec.reductions, out.stats.reductions);
  EXPECT_GT(rec.reductions, 0u);
  EXPECT_EQ(rec.deleted_total, out.stats.deleted_clauses);
  // Every enqueue is either a decision or a (re-)propagation.
  EXPECT_EQ(rec.assignments, out.stats.decisions + out.stats.propagations);
  EXPECT_EQ(rec.propagated_assignments, out.stats.propagations);
}

TEST(EngineHooksTest, HistogramTotalsMatchPropagationCount) {
  const CnfFormula f = gen::random_ksat(60, 258, 3, 11);
  Solver s(busy_options());
  PropagationHistogram hist(f.num_vars());
  s.set_listener(&hist);
  s.load(f);
  const SolveOutcome out = s.solve();
  ASSERT_NE(out.result, SatResult::kUnknown);
  std::uint64_t total = 0;
  for (std::uint64_t c : hist.counts()) total += c;
  EXPECT_EQ(total, out.stats.propagations);
}

TEST(EngineHooksTest, ListenerIsTrajectoryNeutral) {
  // Attaching a listener must not perturb the search in any way.
  const CnfFormula f = gen::pigeonhole(7, 6);
  const SolveOutcome bare = solve_formula(f, busy_options());

  Solver s(busy_options());
  RecordingListener rec;
  s.set_listener(&rec);
  s.load(f);
  const SolveOutcome hooked = s.solve();

  EXPECT_EQ(bare.stats.ticks, hooked.stats.ticks);
  EXPECT_EQ(bare.stats.conflicts, hooked.stats.conflicts);
  EXPECT_EQ(bare.stats.decisions, hooked.stats.decisions);
  EXPECT_EQ(bare.stats.propagations, hooked.stats.propagations);
}

TEST(EngineHooksTest, ChainFansOutToAllListeners) {
  const CnfFormula f = gen::pigeonhole(7, 6);
  RecordingListener a, b;
  PropagationHistogram hist(f.num_vars());
  ListenerChain chain;
  chain.add(&a);
  chain.add(&b);
  chain.add(&hist);

  Solver s(busy_options());
  s.set_listener(&chain);
  s.load(f);
  const SolveOutcome out = s.solve();

  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.reductions, b.reductions);
  std::uint64_t total = 0;
  for (std::uint64_t c : hist.counts()) total += c;
  EXPECT_EQ(total, out.stats.propagations);
}

}  // namespace
}  // namespace ns::solver
