/// Semantic contracts of the autograd engine that the gradcheck sweeps do
/// not cover: gradient accumulation across tapes, leaf isolation, op edge
/// cases, and attention-specific numerical properties.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "nn/tape.hpp"

namespace ns::nn {
namespace {

TEST(TapeSemanticsTest, ParameterGradientsAccumulateAcrossTapes) {
  Parameter w(Matrix::ones(1, 1));
  for (int i = 0; i < 3; ++i) {
    Tape tape;
    const TensorId x = tape.param(&w);
    const TensorId loss = tape.scale(x, 2.0f);
    tape.backward(loss);
  }
  // d(2w)/dw = 2, accumulated three times.
  EXPECT_FLOAT_EQ(w.grad.at(0, 0), 6.0f);
}

TEST(TapeSemanticsTest, ParamNodeBindsLiveValue) {
  // Parameter leaves bind live: each execution reads the value as it is at
  // that moment, which is what makes one recorded program re-runnable
  // across optimizer steps.
  Parameter w(Matrix::ones(1, 1));
  Tape tape;
  const TensorId x = tape.param(&w);
  const TensorId y = tape.scale(x, 2.0f);
  Executor exec(tape.program(), ExecMode::kTraining);
  exec.forward();
  EXPECT_FLOAT_EQ(exec.value(y).at(0, 0), 2.0f);
  w.value.at(0, 0) = 21.0f;  // "optimizer step"
  exec.forward();            // same program, fresh inputs
  EXPECT_FLOAT_EQ(exec.value(y).at(0, 0), 42.0f);
}

TEST(TapeSemanticsTest, ConstantsReceiveNoParameterGradient) {
  Parameter w(Matrix::ones(1, 1));
  Tape tape;
  const TensorId c = tape.constant(Matrix::ones(1, 1));
  const TensorId x = tape.param(&w);
  const TensorId loss = tape.hadamard(c, x);
  tape.backward(loss);
  EXPECT_FLOAT_EQ(w.grad.at(0, 0), 1.0f);  // only via the param leaf
}

TEST(TapeSemanticsTest, SharedSubexpressionGetsSummedGradient) {
  // loss = x*x (x used twice) -> d/dx = 2x.
  Parameter w(Matrix(1, 1));
  w.value.at(0, 0) = 3.0f;
  Tape tape;
  const TensorId x = tape.param(&w);
  tape.backward(tape.hadamard(x, x));
  EXPECT_FLOAT_EQ(w.grad.at(0, 0), 6.0f);
}

TEST(TapeSemanticsTest, BroadcastRowOfOneRowIsIdentity) {
  Tape tape;
  Matrix row(1, 3);
  row.at(0, 0) = 1;
  row.at(0, 1) = 2;
  row.at(0, 2) = 3;
  const TensorId r = tape.constant(row);
  const TensorId b = tape.broadcast_row(r, 1);
  EXPECT_LT(max_abs_diff(tape.value(b), row), 1e-9f);
}

TEST(TapeSemanticsTest, MeanRowsOfSingleRowIsIdentity) {
  Tape tape;
  Matrix row(1, 4, 2.5f);
  const TensorId m = tape.mean_rows(tape.constant(row));
  EXPECT_LT(max_abs_diff(tape.value(m), row), 1e-9f);
}

TEST(TapeSemanticsTest, SliceOfFullRangeIsIdentity) {
  std::mt19937_64 rng(3);
  const Matrix x = Matrix::xavier(3, 5, rng);
  Tape tape;
  const TensorId s = tape.slice_cols(tape.constant(x), 0, 5);
  EXPECT_LT(max_abs_diff(tape.value(s), x), 1e-9f);
}

TEST(TapeSemanticsTest, FrobeniusNormalizeGivesUnitNorm) {
  std::mt19937_64 rng(5);
  Tape tape;
  const TensorId y =
      tape.frobenius_normalize(tape.constant(Matrix::xavier(6, 4, rng)));
  EXPECT_NEAR(tape.value(y).frobenius_norm(), 1.0f, 1e-5f);
}

TEST(TapeSemanticsTest, FrobeniusNormalizeOfZeroIsZero) {
  Tape tape;
  const TensorId y = tape.frobenius_normalize(tape.constant(Matrix(2, 2)));
  EXPECT_FLOAT_EQ(tape.value(y).at(0, 0), 0.0f);
}

TEST(TapeSemanticsTest, WeightedBceMatchesUnweightedAtOne) {
  for (float target : {0.0f, 1.0f}) {
    Tape t1, t2;
    Matrix logit(1, 1);
    logit.at(0, 0) = 0.7f;
    const float a =
        t1.value(t1.bce_with_logits(t1.constant(logit), target)).at(0, 0);
    const float b =
        t2.value(t2.bce_with_logits(t2.constant(logit), target, 1.0f))
            .at(0, 0);
    EXPECT_FLOAT_EQ(a, b);
  }
}

TEST(TapeSemanticsTest, PositiveWeightScalesOnlyPositiveTerm) {
  Matrix logit(1, 1);
  logit.at(0, 0) = -0.3f;
  Tape t1, t2, t3;
  const float pos1 =
      t1.value(t1.bce_with_logits(t1.constant(logit), 1.0f, 1.0f)).at(0, 0);
  const float pos3 =
      t2.value(t2.bce_with_logits(t2.constant(logit), 1.0f, 3.0f)).at(0, 0);
  EXPECT_NEAR(pos3, 3.0f * pos1, 1e-5f);
  const float neg3 =
      t3.value(t3.bce_with_logits(t3.constant(logit), 0.0f, 3.0f)).at(0, 0);
  Tape t4;
  const float neg1 =
      t4.value(t4.bce_with_logits(t4.constant(logit), 0.0f, 1.0f)).at(0, 0);
  EXPECT_FLOAT_EQ(neg3, neg1);  // weight must not touch the negative term
}

TEST(LinearAttentionSemanticsTest, DiagonalStaysPositive) {
  // D = diag(1 + (1/N) Q̃ K̃ᵀ 1): since ‖Q̃‖_F = ‖K̃‖_F = 1, each entry of
  // the correction is bounded by 1 in magnitude, so D entries stay > 0 and
  // the reciprocal is safe. Verify over random inputs.
  std::mt19937_64 rng(7);
  LinearAttention attn(6, rng);
  for (int round = 0; round < 10; ++round) {
    Tape tape;
    Matrix z = Matrix::xavier(9, 6, rng);
    z.scale_in_place(10.0f);  // exaggerate magnitudes
    const TensorId out = attn.forward(tape, tape.constant(z));
    for (std::size_t i = 0; i < tape.value(out).size(); ++i) {
      EXPECT_TRUE(std::isfinite(tape.value(out).data()[i]));
    }
  }
}

TEST(LinearAttentionSemanticsTest, PermutationEquivariant) {
  // Global attention has no positional structure: permuting the input rows
  // must permute the output rows identically.
  std::mt19937_64 rng(11);
  LinearAttention attn(4, rng);
  const Matrix z = Matrix::xavier(5, 4, rng);
  const std::vector<std::uint32_t> perm = {3, 1, 4, 0, 2};

  Tape t1;
  const TensorId direct =
      t1.permute_rows(attn.forward(t1, t1.constant(z)), perm);
  Tape t2;
  const TensorId swapped =
      attn.forward(t2, t2.permute_rows(t2.constant(z), perm));
  EXPECT_LT(max_abs_diff(t1.value(direct), t2.value(swapped)), 1e-5f);
}

}  // namespace
}  // namespace ns::nn
