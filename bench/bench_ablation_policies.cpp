/// \file bench_ablation_policies.cpp
/// Ablations over the design choices DESIGN.md calls out:
///   1. the Eq. 2 threshold alpha (the paper fixes it to 4/5 empirically),
///   2. the reduce fraction (how aggressively the DB is trimmed),
///   3. the keep-glue tier (which clauses are never reducible),
///   4. the Fig. 5 field order (frequency-primary vs frequency-tertiary),
/// measured as total propagations over a mixed hard suite.

#include <cstdio>
#include <vector>

#include "gen/generators.hpp"
#include "policy/deletion_policy.hpp"
#include "solver/solver.hpp"

namespace {

std::vector<ns::CnfFormula> suite() {
  std::vector<ns::CnfFormula> out;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    out.push_back(ns::gen::random_ksat(130, 553, 3, s));
    out.push_back(ns::gen::scramble(ns::gen::pigeonhole(9, 8), s));
    out.push_back(ns::gen::community_sat(300, 1275, 10, 0.8, s));
    out.push_back(ns::gen::parity_equivalence(48, false, s));
  }
  return out;
}

std::uint64_t total_propagations(const std::vector<ns::CnfFormula>& fs,
                                 const ns::solver::SolverOptions& opts) {
  std::uint64_t total = 0;
  for (const ns::CnfFormula& f : fs) {
    ns::solver::SolverOptions o = opts;
    o.max_propagations = 1'000'000;
    total += ns::solver::solve_formula(f, o).stats.propagations;
  }
  return total;
}

}  // namespace

int main() {
  const std::vector<ns::CnfFormula> fs = suite();
  std::printf("=== Ablations (total propagations over a %zu-instance suite; "
              "lower is better) ===\n\n",
              fs.size());

  ns::solver::SolverOptions base;
  base.deletion_policy = ns::policy::PolicyKind::kDefault;
  const std::uint64_t baseline = total_propagations(fs, base);
  std::printf("baseline (default policy):            %llu\n\n",
              static_cast<unsigned long long>(baseline));

  std::printf("1. frequency-policy alpha sweep (Eq. 2; paper picks 0.8):\n");
  for (const double alpha : {0.2, 0.5, 0.8, 0.95}) {
    ns::solver::SolverOptions o = base;
    o.deletion_policy = ns::policy::PolicyKind::kFrequency;
    o.frequency_alpha = alpha;
    std::printf("   alpha=%.2f  ->  %llu\n", alpha,
                static_cast<unsigned long long>(total_propagations(fs, o)));
  }

  std::printf("\n2. reduce fraction sweep (default policy):\n");
  for (const double frac : {0.35, 0.5, 0.65, 0.8}) {
    ns::solver::SolverOptions o = base;
    o.reduce_fraction = frac;
    std::printf("   fraction=%.2f  ->  %llu\n", frac,
                static_cast<unsigned long long>(total_propagations(fs, o)));
  }

  std::printf("\n3. keep-glue tier sweep (glue <= k never deleted):\n");
  for (const std::uint32_t k : {0u, 2u, 4u, 8u}) {
    ns::solver::SolverOptions o = base;
    o.keep_glue = k;
    std::printf("   keep_glue=%u  ->  %llu\n", k,
                static_cast<unsigned long long>(total_propagations(fs, o)));
  }

  std::printf("\n4. deletion policy comparison on the same suite:\n");
  for (const auto kind : {ns::policy::PolicyKind::kDefault,
                          ns::policy::PolicyKind::kFrequency}) {
    ns::solver::SolverOptions o = base;
    o.deletion_policy = kind;
    std::printf("   %-10s  ->  %llu\n",
                kind == ns::policy::PolicyKind::kDefault ? "default"
                                                          : "frequency",
                static_cast<unsigned long long>(total_propagations(fs, o)));
  }
  return 0;
}
