/// \file bench_micro_scaling.cpp
/// Google-benchmark validation of the paper's complexity claims (Sec. 4.3):
/// one HGT layer costs O(|E|) for the MPNN part plus O(|V1|) for linear
/// attention, i.e. the model scales linearly in the CNF size. The reported
/// per-iteration times should grow ~linearly with the instance scale, and
/// the Complexity() fit should come out close to oN.

#include <benchmark/benchmark.h>

#include <random>

#include "gen/generators.hpp"
#include "nn/models.hpp"

namespace {

ns::nn::GraphBatch make_batch(std::size_t num_vars) {
  // Fixed clause/variable ratio so |E| grows linearly with num_vars.
  return ns::nn::GraphBatch::build(ns::gen::random_ksat(
      num_vars, static_cast<std::size_t>(4.2 * num_vars), 3, 99));
}

void BM_LinearAttentionForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(1);
  ns::nn::LinearAttention attn(32, rng);
  const ns::nn::Matrix z = ns::nn::Matrix::xavier(n, 32, rng);
  // Record once, execute per iteration: what's timed is the attention
  // compute, not graph recording.
  ns::nn::Tape tape;
  const ns::nn::TensorId out = attn.forward(tape, tape.constant(z));
  ns::nn::Executor exec(tape.program(), ns::nn::ExecMode::kInference);
  for (auto _ : state) {
    exec.forward();
    benchmark::DoNotOptimize(exec.value(out).data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_LinearAttentionForward)
    ->RangeMultiplier(2)
    ->Range(256, 8192)
    ->Complexity(benchmark::oN);

void BM_MpnnLayerForward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ns::nn::GraphBatch g = make_batch(n);
  std::mt19937_64 rng(2);
  ns::nn::MpnnLayer layer(32, rng);
  const ns::nn::Matrix xv = ns::nn::Matrix::xavier(g.vc.num_vars, 32, rng);
  const ns::nn::Matrix xc = ns::nn::Matrix::xavier(g.vc.num_clauses, 32, rng);
  ns::nn::Tape tape;
  const auto [ov, oc] =
      layer.forward(tape, g.vc, tape.constant(xv), tape.constant(xc));
  ns::nn::Executor exec(tape.program(), ns::nn::ExecMode::kInference);
  for (auto _ : state) {
    exec.forward();
    benchmark::DoNotOptimize(exec.value(ov).data());
    benchmark::DoNotOptimize(exec.value(oc).data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_MpnnLayerForward)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity(benchmark::oN);

void BM_NeuroSelectInference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ns::nn::GraphBatch g = make_batch(n);
  ns::nn::NeuroSelectModel model{ns::nn::NeuroSelectConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_probability(g));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_NeuroSelectInference)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Complexity(benchmark::oN);

void BM_GraphConstruction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ns::CnfFormula f = ns::gen::random_ksat(
      n, static_cast<std::size_t>(4.2 * n), 3, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns::nn::GraphBatch::build(f));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_GraphConstruction)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
