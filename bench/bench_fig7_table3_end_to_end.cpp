/// \file bench_fig7_table3_end_to_end.cpp
/// Reproduces paper Fig. 7 and Table 3: NeuroSelect-Kissat vs Kissat on the
/// test split.
///   Fig. 7(a): per-instance scatter of runtimes (CSV below).
///   Fig. 7(b): box statistics of model inference time and of per-instance
///              runtime improvement.
///   Table 3:   #solved, median and average runtime of both configurations.
/// Expected shape: equal #solved, NeuroSelect-Kissat median a few percent
/// lower (the paper reports 5.8%), inference cost negligible vs savings.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/neuroselect.hpp"
#include "nn/models.hpp"

namespace {

struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};

BoxStats box(std::vector<double> v) {
  BoxStats b;
  if (v.empty()) return b;
  std::sort(v.begin(), v.end());
  const auto at = [&](double q) {
    const double pos = q * (v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    return v[lo] + (pos - lo) * (v[hi] - v[lo]);
  };
  b.min = v.front();
  b.q1 = at(0.25);
  b.median = at(0.5);
  b.q3 = at(0.75);
  b.max = v.back();
  return b;
}

void print_box(const char* label, const BoxStats& b, const char* unit) {
  std::printf("  %-26s min %.3f | q1 %.3f | median %.3f | q3 %.3f | max %.3f %s\n",
              label, b.min, b.q1, b.median, b.q3, b.max, unit);
}

}  // namespace

int main() {
  // Train NeuroSelect on the 2016-2021 splits.
  const ns::bench::LabeledDataset data =
      ns::bench::build_labeled_dataset(/*train_per_year=*/12, /*test_count=*/36, /*seed=*/17);
  std::printf("training NeuroSelect...\n");
  const auto model = ns::bench::train_with_restarts(
      ns::nn::ClassifierKind::kNeuroSelect, data.train,
      ns::bench::bench_train_options());
  const ns::core::ClassificationMetrics m =
      ns::core::evaluate_classifier(*model, data.test);
  std::printf("test accuracy of the selector: %.1f%%\n\n", 100.0 * m.accuracy);

  // Fresh (unlabelled) test instances for the end-to-end run.
  std::vector<ns::gen::NamedInstance> test =
      ns::gen::generate_split(2022, 36, 17);

  ns::core::EndToEndOptions opts;
  opts.timeout_propagations = 500'000;
  opts.proxy_props_per_second = 100.0;  // budget == 5000 proxy-seconds
  const ns::core::EndToEndSummary summary =
      ns::core::run_end_to_end(*model, test, opts);

  std::printf("=== Figure 7(a): Kissat vs NeuroSelect-Kissat runtimes ===\n");
  std::printf("name,kissat_s,neuroselect_s,policy,inference_s\n");
  std::vector<double> inference_times, improvements;
  for (const ns::core::InstanceRun& r : summary.runs) {
    std::printf("%s,%.2f,%.2f,%s,%.4f\n", r.name.c_str(), r.kissat_seconds,
                r.neuroselect_seconds,
                r.chosen == ns::policy::PolicyKind::kFrequency ? "frequency"
                                                               : "default",
                r.inference_seconds);
    if (r.within_cap) inference_times.push_back(r.inference_seconds);
    improvements.push_back(r.kissat_seconds - r.neuroselect_seconds);
  }

  std::printf("\n=== Figure 7(b): box-and-whisker statistics ===\n");
  print_box("model inference time", box(inference_times), "s (wall clock)");
  print_box("runtime improvement", box(improvements), "proxy-s");

  std::printf("\n=== Table 3: runtime statistics on the 2022 test split ===\n");
  std::printf("%-22s %-8s %-12s %-12s\n", "", "solved", "median (s)",
              "average (s)");
  std::printf("%-22s %-8zu %-12.2f %-12.2f\n", "Kissat", summary.solved_kissat,
              summary.median_kissat, summary.average_kissat);
  std::printf("%-22s %-8zu %-12.2f %-12.2f\n", "NeuroSelect-Kissat",
              summary.solved_neuroselect, summary.median_neuroselect,
              summary.average_neuroselect);
  std::printf("\nruntime improvement: average %.1f%%, median %.1f%% "
              "(the paper's 5.8%% is its average: 713.28 -> 671.73 s)\n",
              summary.average_improvement_percent,
              summary.median_improvement_percent);
  return 0;
}
