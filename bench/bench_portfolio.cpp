/// Portfolio racing bench (DESIGN.md §15): races the default engine
/// portfolio over a generated corpus under equal per-engine tick budgets
/// and compares three race-planning strategies:
///
///   single-best  run only config 0 (the pre-portfolio baseline),
///   fixed        race every registry config,
///   classifier   one NeuroSelect inference ranks the configs with trained
///                priority heads; race only the top slice.
///
/// Quality is measured in the solver's deterministic time unit (ticks;
/// reported as proxy ms = ticks / 1000, matching the labelling benches'
/// propagation proxy). The bench hard-gates the acceptance ordering —
/// classifier-guided >= fixed >= single-best on solved count, and
/// classifier strictly cheaper than fixed on total work — plus bitwise
/// winner determinism of the racer across 1/2/8 global threads. Rows land
/// in BENCH_parallel_scaling.json under the "portfolio/" name prefix
/// (merge-written: the scaling bench's own rows are preserved).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/labeling.hpp"
#include "core/neuroselect.hpp"
#include "gen/dataset.hpp"
#include "portfolio/engine_config.hpp"
#include "portfolio/racer.hpp"
#include "portfolio/select.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSliceTicks = 20'000;
constexpr std::uint64_t kBudgetTicks = 150'000;  ///< per-engine race cap

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Aggregate race quality for one strategy over the whole corpus.
struct ModeTally {
  std::size_t solved = 0;
  std::uint64_t winner_ticks = 0;  ///< summed over solved instances
  std::uint64_t work_ticks = 0;    ///< summed over every raced engine
  std::size_t engines_raced = 0;   ///< summed subset sizes
  double wall_ms = 0.0;
};

/// Races `mode` over the corpus and tallies quality. The racer is reused
/// across instances (warm-race path: load() resets every engine).
ModeTally run_mode(ns::portfolio::SelectMode mode,
                   ns::nn::SatClassifier* model,
                   const ns::portfolio::EngineConfigRegistry& registry,
                   const std::vector<ns::core::PriorityHead>& heads,
                   const std::vector<ns::gen::NamedInstance>& corpus) {
  ns::portfolio::RacerOptions ropts;
  ropts.slice_ticks = kSliceTicks;
  ropts.max_ticks = kBudgetTicks;
  ns::portfolio::PortfolioRacer racer(registry, ropts);
  ModeTally tally;
  const auto t0 = Clock::now();
  for (const ns::gen::NamedInstance& inst : corpus) {
    const ns::portfolio::SelectionPlan plan = ns::portfolio::plan_race(
        mode, model, registry, inst.formula, /*subset_size=*/0, heads);
    racer.load(inst.formula);
    const ns::portfolio::RaceResult race = racer.race_subset(plan.subset_ids);
    tally.engines_raced += plan.subset_ids.size();
    if (race.winner >= 0) {
      ++tally.solved;
      tally.winner_ticks += race.winner_ticks;
    }
    for (const ns::portfolio::EngineRaceResult& e : race.engines) {
      tally.work_ticks += e.ticks;
    }
  }
  tally.wall_ms = ms_since(t0);
  return tally;
}

}  // namespace

int main() {
  ns::bench::BenchJson json("parallel_scaling");
  const ns::portfolio::EngineConfigRegistry registry =
      ns::portfolio::EngineConfigRegistry::default_portfolio();

  // --- train the selector (model + priority heads) ------------------------
  // Same recipe as the other learning benches, at reduced scale: the
  // classifier learns P(frequency-deletion wins) from dual-policy labels,
  // then the per-config priority heads are fit to portfolio labels replayed
  // under this bench's exact slice/budget schedule.
  ns::gen::Dataset ds = ns::gen::build_dataset(/*per_year=*/4, /*seed=*/2);
  ns::core::LabelingOptions lopts;
  lopts.max_propagations = 500'000;
  std::printf("labelling %zu train instances (dual-policy solves)...\n",
              ds.train.size());
  const std::vector<ns::core::LabeledInstance> train_labeled =
      ns::core::label_dataset(std::move(ds.train), lopts);
  std::unique_ptr<ns::nn::SatClassifier> model = ns::bench::train_with_restarts(
      ns::nn::ClassifierKind::kNeuroSelect, train_labeled,
      ns::bench::bench_train_options());

  const std::vector<ns::gen::NamedInstance> heads_train =
      ns::gen::generate_split(2021, 8, 2);
  ns::core::PriorityTrainOptions hopts;
  hopts.slice_ticks = kSliceTicks;
  hopts.max_ticks = kBudgetTicks;
  std::printf("fitting priority heads on %zu instances "
              "(portfolio labelling, %zu configs)...\n\n",
              heads_train.size(), registry.size());
  const std::vector<ns::core::PriorityHead> heads =
      ns::core::train_priority_heads(model.get(), heads_train,
                                     registry.options_list(), hopts);

  const std::vector<ns::gen::NamedInstance> corpus =
      ns::gen::generate_split(2022, 20, 7);

  // --- strategy comparison ------------------------------------------------
  struct ModeRow {
    ns::portfolio::SelectMode mode;
    ModeTally tally;
  };
  std::vector<ModeRow> rows;
  for (ns::portfolio::SelectMode mode :
       {ns::portfolio::SelectMode::kSingleBest,
        ns::portfolio::SelectMode::kFixed,
        ns::portfolio::SelectMode::kClassifier}) {
    rows.push_back({mode, run_mode(mode, model.get(), registry, heads,
                                   corpus)});
  }

  std::printf("%-12s %8s %8s %16s %14s %10s\n", "mode", "solved", "engines",
              "winner_proxy_ms", "work_proxy_ms", "wall_ms");
  for (const ModeRow& r : rows) {
    const char* name = ns::portfolio::select_mode_name(r.mode);
    const ModeTally& t = r.tally;
    std::printf("%-12s %5zu/%zu %8zu %16.1f %14.1f %10.1f\n", name, t.solved,
                corpus.size(), t.engines_raced, t.winner_ticks / 1000.0,
                t.work_ticks / 1000.0, t.wall_ms);
    const std::size_t per_race = t.engines_raced / corpus.size();
    const std::string tag = std::string("(") + name + ")";
    json.record("portfolio/solved" + tag, per_race,
                static_cast<double>(t.solved));
    json.record("portfolio/winner_proxy_ms" + tag, per_race,
                t.winner_ticks / 1000.0);
    json.record("portfolio/work_proxy_ms" + tag, per_race,
                t.work_ticks / 1000.0);
  }

  // --- determinism: full-portfolio race across global thread counts -------
  int mismatches = 0;
  std::vector<std::pair<int, std::uint64_t>> golden;
  double base_ms = 0.0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ns::runtime::set_global_thread_count(threads);
    ns::portfolio::RacerOptions ropts;
    ropts.slice_ticks = kSliceTicks;
    ropts.max_ticks = kBudgetTicks;
    ns::portfolio::PortfolioRacer racer(registry, ropts);
    std::vector<std::pair<int, std::uint64_t>> winners;
    const auto t0 = Clock::now();
    for (const ns::gen::NamedInstance& inst : corpus) {
      racer.load(inst.formula);
      const ns::portfolio::RaceResult race = racer.race();
      winners.emplace_back(race.winner, race.winner_ticks);
    }
    const double ms = ms_since(t0);
    if (threads == 1) {
      golden = winners;
      base_ms = ms;
      json.record("portfolio/race(fixed)", threads, ms);
    } else {
      json.record("portfolio/race(fixed)", threads, ms, base_ms / ms);
      if (winners != golden) {
        ++mismatches;
        std::printf("FAIL: race winners at %zu threads differ from 1 "
                    "thread\n", threads);
      }
    }
    std::printf("race(fixed) %zu threads: %.1f ms\n", threads, ms);
  }
  ns::runtime::set_global_thread_count(0);  // restore the default

  // bench_parallel_scaling shares this BENCH file: keep its rows, replace
  // only the "portfolio/" partition.
  if (!json.write_shared("portfolio/", /*this_bench_owns_prefix=*/true)) {
    std::printf("warning: could not write BENCH_parallel_scaling.json\n");
  }

  // --- acceptance gates ---------------------------------------------------
  const ModeTally& single = rows[0].tally;
  const ModeTally& fixed = rows[1].tally;
  const ModeTally& classifier = rows[2].tally;
  int violations = mismatches;
  // Racing a subset under the same per-engine budget can never solve more
  // than racing everything, so "classifier >= fixed on solved count" means
  // equality: the learned ranking must not drop any instance's only
  // within-budget winner.
  if (classifier.solved < fixed.solved) {
    ++violations;
    std::printf("FAIL: classifier-guided subset solved %zu < fixed %zu\n",
                classifier.solved, fixed.solved);
  }
  if (fixed.solved < single.solved) {
    ++violations;
    std::printf("FAIL: fixed portfolio solved %zu < single-best %zu\n",
                fixed.solved, single.solved);
  }
  if (classifier.work_ticks >= fixed.work_ticks) {
    ++violations;
    std::printf("FAIL: classifier work %llu ticks not below fixed %llu\n",
                static_cast<unsigned long long>(classifier.work_ticks),
                static_cast<unsigned long long>(fixed.work_ticks));
  }
  // Tick proxy (time to solution): racing every config can only find
  // earlier winners than running config 0 alone — the winner is the
  // (ticks, id)-minimum over a superset — and the learned subset must keep
  // enough of that advantage to also beat the single engine.
  if (fixed.solved == single.solved &&
      fixed.winner_ticks > single.winner_ticks) {
    ++violations;
    std::printf("FAIL: fixed winner ticks %llu above single-best %llu\n",
                static_cast<unsigned long long>(fixed.winner_ticks),
                static_cast<unsigned long long>(single.winner_ticks));
  }
  if (classifier.solved == single.solved &&
      classifier.winner_ticks > single.winner_ticks) {
    ++violations;
    std::printf("FAIL: classifier winner ticks %llu above single-best "
                "%llu\n",
                static_cast<unsigned long long>(classifier.winner_ticks),
                static_cast<unsigned long long>(single.winner_ticks));
  }
  if (violations > 0) {
    std::printf("\nFAIL: %d portfolio gate violations\n", violations);
    return 1;
  }
  std::printf("\nOK: classifier-guided >= fixed >= single-best on solved "
              "count and the winner-tick proxy; classifier beats fixed on "
              "total work; winners thread-count invariant\n");
  return 0;
}
