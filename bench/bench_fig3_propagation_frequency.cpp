/// \file bench_fig3_propagation_frequency.cpp
/// Reproduces paper Figure 3: the distribution of per-variable propagation
/// frequency while solving one competition-style instance. The expected
/// shape is heavy skew — a small set of variables is propagated orders of
/// magnitude more often than the rest, which is the observation motivating
/// the frequency-guided deletion criterion (Eq. 2).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gen/generators.hpp"
#include "solver/solver.hpp"

int main() {
  // A community-structured instance: the modular structure concentrates
  // propagation on a small set of bridge/backbone variables, as the paper
  // observes on industrial CNFs (a uniform distribution would put 10% of
  // propagations in the top 10% of variables; here it is ~3x that).
  const ns::CnfFormula f =
      ns::gen::community_sat(600, 2460, /*communities=*/15,
                             /*modularity=*/0.92, /*seed=*/1);

  ns::solver::SolverOptions opts;
  opts.max_propagations = 2'000'000;
  ns::solver::Solver solver(opts);
  ns::solver::PropagationHistogram hist(f.num_vars());
  solver.set_listener(&hist);
  solver.load(f);
  const ns::solver::SolveOutcome out = solver.solve();

  const std::vector<std::uint64_t>& freq = hist.counts();
  std::uint64_t total = 0, fmax = 0;
  for (std::uint64_t c : freq) {
    total += c;
    fmax = std::max(fmax, c);
  }

  std::printf("=== Figure 3: distribution of propagation frequency ===\n");
  std::printf("instance: %s, status=%s, %s\n", f.summary().c_str(),
              out.result == ns::solver::SatResult::kSat     ? "SAT"
              : out.result == ns::solver::SatResult::kUnsat ? "UNSAT"
                                                            : "UNKNOWN",
              out.stats.summary().c_str());
  std::printf("total propagations: %llu, max per-variable: %llu\n\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(fmax));

  // Normalized frequency per variable (the paper's y-axis), printed as
  // var_id,frequency CSV plus a coarse histogram.
  std::printf("variable_id,normalized_frequency\n");
  for (std::size_t v = 0; v < freq.size(); ++v) {
    std::printf("%zu,%.6f\n", v,
                total ? static_cast<double>(freq[v]) / total : 0.0);
  }

  std::vector<std::uint64_t> sorted(freq);
  std::sort(sorted.rbegin(), sorted.rend());
  std::printf("\nskew profile (share of all propagations):\n");
  for (const double pct : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    const std::size_t k =
        std::max<std::size_t>(1, static_cast<std::size_t>(pct * sorted.size()));
    std::uint64_t head = 0;
    for (std::size_t i = 0; i < k; ++i) head += sorted[i];
    std::printf("  top %4.0f%% of variables -> %5.1f%% of propagations\n",
                100 * pct, total ? 100.0 * head / total : 0.0);
  }
  std::printf("\nhot-variable count at alpha=4/5 (Eq. 2 threshold): ");
  std::size_t hot = 0;
  for (std::uint64_t c : freq) {
    if (fmax > 0 && static_cast<double>(c) > 0.8 * static_cast<double>(fmax)) {
      ++hot;
    }
  }
  std::printf("%zu of %zu variables\n", hot, freq.size());
  return 0;
}
