/// \file bench_fig5_score_packing.cpp
/// Reproduces paper Figure 5: how the default and the frequency-guided
/// clause scoring algorithms pack their metrics into a 64-bit retention
/// score. Prints the field layouts, example packings, and the resulting
/// deletion ranking over a sample clause population, demonstrating that the
/// two policies order the same clauses differently.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "policy/deletion_policy.hpp"

namespace {

void print_bits(std::uint64_t x) {
  for (int b = 63; b >= 0; --b) {
    std::putchar((x >> b) & 1 ? '1' : '0');
    if (b % 8 == 0 && b != 0) std::putchar('\'');
  }
}

}  // namespace

int main() {
  using ns::policy::ClauseFeatures;
  using ns::policy::pack_default_score;
  using ns::policy::pack_frequency_score;

  std::printf("=== Figure 5: 64-bit clause retention scores ===\n\n");
  std::printf("Default:  [63..32] ~glue | [31..0] ~size\n");
  std::printf("New:      [63..44] frequency | [43..24] ~size | [23..0] ~glue\n");
  std::printf("(~x = field_max - x; higher packed score = kept longer)\n\n");

  const ClauseFeatures samples[] = {
      {.glue = 2, .size = 5, .frequency = 0},
      {.glue = 2, .size = 9, .frequency = 2},
      {.glue = 6, .size = 12, .frequency = 4},
      {.glue = 6, .size = 12, .frequency = 0},
      {.glue = 15, .size = 40, .frequency = 6},
      {.glue = 30, .size = 80, .frequency = 0},
  };

  std::printf("%-28s %-22s %-22s\n", "features (glue,size,freq)",
              "default score", "frequency score");
  for (const ClauseFeatures& f : samples) {
    std::printf("g=%-3u s=%-3u f=%-3u          %020" PRIu64 "  %020" PRIu64
                "\n",
                f.glue, f.size, f.frequency, pack_default_score(f),
                pack_frequency_score(f));
  }

  std::printf("\nbit patterns for (g=6, s=12, f=4):\n  default:   ");
  print_bits(pack_default_score({6, 12, 4}));
  std::printf("\n  frequency: ");
  print_bits(pack_frequency_score({6, 12, 4}));
  std::printf("\n");

  // Deletion ranking comparison: sort the sample population under both
  // policies (ascending score = deleted first).
  std::vector<ClauseFeatures> pop(samples, samples + 6);
  std::printf("\ndeletion order (first deleted -> last kept):\n");
  for (const bool use_frequency : {false, true}) {
    std::vector<ClauseFeatures> order = pop;
    std::sort(order.begin(), order.end(),
              [&](const ClauseFeatures& a, const ClauseFeatures& b) {
                return use_frequency
                           ? pack_frequency_score(a) < pack_frequency_score(b)
                           : pack_default_score(a) < pack_default_score(b);
              });
    std::printf("  %-10s:", use_frequency ? "frequency" : "default");
    for (const ClauseFeatures& f : order) {
      std::printf("  (g=%u,s=%u,f=%u)", f.glue, f.size, f.frequency);
    }
    std::printf("\n");
  }
  std::printf("\nnote: the orderings differ -> the policies are genuinely "
              "complementary.\n");
  return 0;
}
