/// \file bench_table1_dataset_stats.cpp
/// Reproduces paper Table 1: statistics of the training (2016-2021) and
/// test (2022) dataset splits. Our splits are synthetic stand-ins for the
/// SAT-competition main tracks (see DESIGN.md §2) and are scaled down to
/// laptop size; the table structure and the per-year breakdown match the
/// paper. Also reports the label balance produced by the 2% rule.

#include <cstdio>

#include "core/labeling.hpp"
#include "gen/dataset.hpp"

int main() {
  constexpr std::size_t kPerYear = 24;
  const ns::gen::Dataset ds = ns::gen::build_dataset(kPerYear, /*seed=*/17);

  std::printf("=== Table 1: statistics of the training and test datasets ===\n\n");
  std::printf("%-10s %-6s %-8s %-12s %-12s\n", "Data Type", "Year", "# CNFs",
              "avg # Vars", "avg # Clauses");
  for (const ns::gen::SplitStats& st : ds.split_stats) {
    std::printf("%-10s %-6d %-8zu %-12.1f %-12.1f\n",
                st.year == 2022 ? "Test" : "Training", st.year, st.num_cnfs,
                st.avg_vars, st.avg_clauses);
  }

  // Label balance of the test year (cheap budget: structure, not labels,
  // is the point of this table; the full labelling runs in table2's bench).
  ns::core::LabelingOptions lopts;
  lopts.max_propagations = 500'000;
  const auto labeled = ns::core::label_dataset(
      ns::gen::generate_split(2022, kPerYear, 17), lopts);
  std::printf("\ntest-year label balance (2%% propagation-reduction rule): "
              "%.1f%% positive\n",
              100.0 * ns::core::positive_fraction(labeled));
  std::printf("train instances: %zu, test instances: %zu\n", ds.train.size(),
              ds.test.size());
  return 0;
}
