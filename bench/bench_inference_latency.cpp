/// \file bench_inference_latency.cpp
/// Single-instance inference latency of the program/executor split, and
/// the allocation-free steady-state contract behind it.
///
/// For every Table-2 classifier the bench records one instance's forward
/// program into an `InferenceSession`, warms it up, then (a) counts global
/// operator-new calls across a window of repeated predictions — the
/// liveness-planned workspace must make that count exactly zero with a
/// single-thread kernel pool — and (b) reports p50/p99 per-call latency.
/// The same contract is then checked on the packed batch path: a
/// `BatchedInferenceSession` over a 16-instance block-diagonal batch must
/// also run its prediction window with zero operator-new calls
/// (`*_batch16_steady_allocs`), and its per-call latency lands in
/// `*_batch16_p50`. Results land in BENCH_inference_latency.json;
/// `steady_allocs` entries carry the allocation count in the wall_ms field
/// (0 expected). The process exits non-zero if any model allocates in
/// steady state, so the contract is checkable in CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "nn/models.hpp"
#include "runtime/thread_pool.hpp"

// --- counting allocator (whole-TU override) -------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The replaced operator new above is malloc-backed, so free() IS the
// matching deallocation; GCC pairs the replaced `::operator new` symbol
// with free() and reports a false mismatch when vector destructors inline.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kWarmup = 8;
constexpr std::size_t kAllocWindow = 64;
constexpr std::size_t kLatencyReps = 200;
constexpr std::size_t kBatchLatencyReps = 50;

double percentile(std::vector<double> sorted_ms, double p) {
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[idx];
}

}  // namespace

int main() {
  // Single-thread pool: the zero-allocation contract holds for the inline
  // kernel path (multi-thread fan-out allocates inside pool dispatch).
  ns::runtime::set_global_thread_count(1);

  const ns::nn::GraphBatch g =
      ns::nn::GraphBatch::build(ns::gen::random_ksat(60, 252, 3, 2024));

  // Packed 16-instance batch (same split as bench_parallel_scaling's
  // classify_batch workload) for the batched steady-state check.
  const std::vector<ns::gen::NamedInstance> split =
      ns::gen::generate_split(2022, 16, 5);
  std::vector<ns::nn::GraphBatch> batch_graphs;
  batch_graphs.reserve(split.size());
  for (const ns::gen::NamedInstance& inst : split) {
    batch_graphs.push_back(ns::nn::GraphBatch::build(inst.formula));
  }
  std::vector<const ns::nn::GraphBatch*> batch_ptrs;
  for (const ns::nn::GraphBatch& bg : batch_graphs) batch_ptrs.push_back(&bg);
  const ns::nn::PackedGraphs packed = ns::nn::PackedGraphs::build(batch_ptrs);

  struct Row {
    const char* name;
    ns::nn::ClassifierKind kind;
  };
  const Row rows[] = {
      {"NeuroSat", ns::nn::ClassifierKind::kNeuroSat},
      {"Gin", ns::nn::ClassifierKind::kGin},
      {"NeuroSelectNoAttention",
       ns::nn::ClassifierKind::kNeuroSelectNoAttention},
      {"NeuroSelect", ns::nn::ClassifierKind::kNeuroSelect},
  };

  ns::bench::BenchJson json("inference_latency");
  bool all_zero = true;
  float sink = 0.0f;

  for (const Row& row : rows) {
    auto model = ns::nn::make_classifier(row.kind, 7);
    ns::nn::InferenceSession session(*model, g);

    for (std::size_t i = 0; i < kWarmup; ++i) {
      sink += session.predict_probability();
    }

    // (a) steady-state allocation count over a prediction window.
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kAllocWindow; ++i) {
      sink += session.predict_probability();
    }
    const std::size_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    all_zero = all_zero && allocs == 0;

    // (b) per-call latency distribution.
    std::vector<double> ms;
    ms.reserve(kLatencyReps);
    for (std::size_t i = 0; i < kLatencyReps; ++i) {
      const auto t0 = Clock::now();
      sink += session.predict_probability();
      const auto t1 = Clock::now();
      ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const double p50 = percentile(ms, 0.50);
    const double p99 = percentile(ms, 0.99);

    json.record(std::string(row.name) + "_p50", 1, p50);
    json.record(std::string(row.name) + "_p99", 1, p99);
    json.record(std::string(row.name) + "_steady_allocs", 1,
                static_cast<double>(allocs));
    std::printf(
        "%-24s p50 %8.4f ms  p99 %8.4f ms  steady-state allocs %zu\n",
        row.name, p50, p99, allocs);

    // Packed batch path: one recorded program over the block-diagonal
    // 16-instance batch must hold the same zero-allocation contract.
    ns::nn::BatchedInferenceSession batched(*model, packed);
    for (std::size_t i = 0; i < kWarmup; ++i) {
      sink += batched.predict_probabilities()[0];
    }
    const std::size_t bbefore = g_alloc_count.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kAllocWindow; ++i) {
      sink += batched.predict_probabilities()[0];
    }
    const std::size_t ballocs =
        g_alloc_count.load(std::memory_order_relaxed) - bbefore;
    all_zero = all_zero && ballocs == 0;

    std::vector<double> bms;
    bms.reserve(kBatchLatencyReps);
    for (std::size_t i = 0; i < kBatchLatencyReps; ++i) {
      const auto t0 = Clock::now();
      sink += batched.predict_probabilities()[0];
      const auto t1 = Clock::now();
      bms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    const double bp50 = percentile(bms, 0.50);

    json.record(std::string(row.name) + "_batch16_p50", 1, bp50);
    json.record(std::string(row.name) + "_batch16_steady_allocs", 1,
                static_cast<double>(ballocs));
    std::printf(
        "%-24s batch16 p50 %8.4f ms  steady-state allocs %zu\n",
        row.name, bp50, ballocs);
  }

  if (!json.write()) {
    std::fprintf(stderr, "failed to write BENCH_inference_latency.json\n");
    return 2;
  }
  std::printf("(checksum %g)\n", static_cast<double>(sink));
  if (!all_zero) {
    std::fprintf(stderr,
                 "FAIL: steady-state predictions allocated on the heap\n");
    return 1;
  }
  std::printf("PASS: zero steady-state heap allocations for all models\n");
  return 0;
}
