/// \file bench_parallel_scaling.cpp
/// Thread-scaling of the four pool-backed hot paths: dense GEMM, CSR SpMM,
/// dual-policy labelling, and batched classification. For each workload the
/// bench sweeps 1/2/4/8 threads, reports wall time and speedup over the
/// 1-thread run, and verifies that the results are bitwise identical across
/// thread counts (the runtime's determinism contract). Measurements — with
/// speedup_vs_1t per row — are also written to BENCH_parallel_scaling.json,
/// and the bench exits nonzero if any multi-thread run is more than 10%
/// slower than its own 1-thread baseline.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>

#include "bench_common.hpp"
#include "core/neuroselect.hpp"
#include "nn/matrix.hpp"
#include "nn/models.hpp"
#include "nn/sparse.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using ns::nn::Matrix;
using ns::nn::SparseMatrix;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

double time_best_ms(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  return Matrix::xavier(rows, cols, rng);
}

SparseMatrix random_csr(std::size_t rows, std::size_t cols,
                        std::size_t nnz_per_row, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> col(
      0, static_cast<std::uint32_t>(cols - 1));
  std::uniform_real_distribution<float> weight(-1.0f, 1.0f);
  std::vector<std::uint32_t> ri, ci;
  std::vector<float> v;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      ri.push_back(static_cast<std::uint32_t>(r));
      ci.push_back(col(rng));
      v.push_back(weight(rng));
    }
  }
  return SparseMatrix::from_coo(rows, cols, ri, ci, v);
}

/// Records one sweep point (with its speedup over the workload's 1-thread
/// run) and returns true when a multi-thread measurement regresses more
/// than 10% below the 1-thread baseline — the gate that fails the bench.
bool report(ns::bench::BenchJson& json, const char* name, std::size_t threads,
            double ms, double base_ms) {
  std::printf("  %-18s %2zu threads  %9.2f ms  speedup %.2fx\n", name,
              threads, ms, base_ms / ms);
  json.record(name, threads, ms, base_ms / ms);
  if (threads > 1 && ms > base_ms * 1.10) {
    std::printf("  !! %s regresses at %zu threads: %.2f ms vs %.2f ms "
                "1-thread (>10%%)\n",
                name, threads, ms, base_ms);
    return true;
  }
  return false;
}

}  // namespace

int main() {
  ns::bench::BenchJson json("parallel_scaling");
  int mismatches = 0;
  int regressions = 0;

  // --- dense GEMM --------------------------------------------------------
  {
    const Matrix a = random_matrix(384, 384, 11);
    const Matrix b = random_matrix(384, 384, 12);
    std::printf("GEMM 384x384x384\n");
    Matrix reference;
    double base_ms = 0.0;
    for (const std::size_t t : kThreadCounts) {
      ns::runtime::set_global_thread_count(t);
      Matrix c;
      const double ms = time_best_ms(5, [&] { c = ns::nn::matmul(a, b); });
      if (t == 1) {
        reference = c;
        base_ms = ms;
      } else if (!bitwise_equal(reference, c)) {
        std::printf("  !! GEMM result differs at %zu threads\n", t);
        ++mismatches;
      }
      if (report(json, "gemm", t, ms, base_ms)) ++regressions;
    }
  }

  // --- CSR SpMM -----------------------------------------------------------
  {
    const SparseMatrix s = random_csr(20000, 20000, 12, 21);
    const Matrix x = random_matrix(20000, 64, 22);
    std::printf("SpMM 20000x20000 (nnz %zu) x 64\n", s.nnz());
    Matrix reference;
    double base_ms = 0.0;
    for (const std::size_t t : kThreadCounts) {
      ns::runtime::set_global_thread_count(t);
      Matrix y;
      const double ms = time_best_ms(5, [&] { y = s.multiply(x); });
      if (t == 1) {
        reference = y;
        base_ms = ms;
      } else if (!bitwise_equal(reference, y)) {
        std::printf("  !! SpMM result differs at %zu threads\n", t);
        ++mismatches;
      }
      if (report(json, "spmm", t, ms, base_ms)) ++regressions;
    }
  }

  // --- dual-policy labelling ---------------------------------------------
  {
    std::printf("labelling 8 instances (dual-policy solves)\n");
    ns::core::LabelingOptions lopts;
    lopts.max_propagations = 200'000;
    std::vector<ns::core::LabeledInstance> reference;
    double base_ms = 0.0;
    for (const std::size_t t : kThreadCounts) {
      ns::runtime::set_global_thread_count(t);
      std::vector<ns::core::LabeledInstance> labeled;
      const double ms = time_best_ms(1, [&] {
        labeled = ns::core::label_dataset(
            ns::gen::generate_split(2022, 8, 3), lopts);
      });
      if (t == 1) {
        reference = std::move(labeled);
        base_ms = ms;
      } else {
        for (std::size_t i = 0; i < reference.size(); ++i) {
          if (labeled[i].label != reference[i].label ||
              labeled[i].propagations_default !=
                  reference[i].propagations_default ||
              labeled[i].propagations_frequency !=
                  reference[i].propagations_frequency) {
            std::printf("  !! labelling differs at %zu threads (inst %zu)\n",
                        t, i);
            ++mismatches;
            break;
          }
        }
      }
      if (report(json, "labeling", t, ms, base_ms)) ++regressions;
    }
  }

  // --- batched classification --------------------------------------------
  {
    std::printf("batched classification (16 instances)\n");
    const std::vector<ns::gen::NamedInstance> split =
        ns::gen::generate_split(2022, 16, 5);
    std::vector<ns::nn::GraphBatch> graphs;
    graphs.reserve(split.size());
    for (const ns::gen::NamedInstance& inst : split) {
      graphs.push_back(ns::nn::GraphBatch::build(inst.formula));
    }
    std::vector<const ns::nn::GraphBatch*> batch;
    for (const ns::nn::GraphBatch& g : graphs) batch.push_back(&g);
    ns::nn::NeuroSelectModel model;

    std::vector<float> reference;
    double base_ms = 0.0;
    for (const std::size_t t : kThreadCounts) {
      ns::runtime::set_global_thread_count(t);
      std::vector<float> probs;
      const double ms = time_best_ms(3, [&] {
        probs = ns::core::classify_batch(model, batch);
      });
      if (t == 1) {
        reference = probs;
        base_ms = ms;
      } else if (probs != reference) {
        std::printf("  !! classification differs at %zu threads\n", t);
        ++mismatches;
      }
      if (report(json, "classify_batch", t, ms, base_ms)) ++regressions;
    }
  }

  ns::runtime::set_global_thread_count(0);  // restore the default
  // bench_portfolio shares this BENCH file: keep its "portfolio/" rows.
  if (!json.write_shared("portfolio/", /*this_bench_owns_prefix=*/false)) {
    std::printf("warning: could not write BENCH_parallel_scaling.json\n");
  }
  if (mismatches > 0 || regressions > 0) {
    std::printf("FAIL: %d determinism mismatches, %d multi-thread "
                "regressions (>10%% over 1-thread)\n",
                mismatches, regressions);
    return 1;
  }
  std::printf("all results bitwise identical across thread counts, "
              "no multi-thread regression\n");
  return 0;
}
