/// \file bench_fig4_policy_scatter.cpp
/// Reproduces paper Figure 4: per-instance runtime of Kissat's default
/// clause-deletion policy (x-axis) vs the propagation-frequency-guided
/// policy (y-axis) over a benchmark suite with a fixed timeout. Instances
/// unsolved by both policies are excluded, as in the paper. Prints one CSV
/// row per instance plus win/loss aggregates; the expected *shape* is dots
/// on both sides of the diagonal — neither policy dominates — which is the
/// paper's motivation for learned policy selection.

#include <cstdio>

#include "core/neuroselect.hpp"
#include "gen/dataset.hpp"
#include "solver/solver.hpp"

namespace {

struct Measurement {
  double default_seconds;
  double frequency_seconds;
  bool default_solved;
  bool frequency_solved;
};

Measurement measure(const ns::CnfFormula& f, std::uint64_t budget,
                    double props_per_second) {
  Measurement m{};
  ns::solver::SolverOptions opts;
  opts.max_propagations = budget;

  opts.deletion_policy = ns::policy::PolicyKind::kDefault;
  const auto d = ns::solver::solve_formula(f, opts);
  m.default_solved = d.result != ns::solver::SatResult::kUnknown;
  m.default_seconds =
      (m.default_solved ? static_cast<double>(d.stats.propagations)
                        : static_cast<double>(budget)) /
      props_per_second;

  opts.deletion_policy = ns::policy::PolicyKind::kFrequency;
  const auto q = ns::solver::solve_formula(f, opts);
  m.frequency_solved = q.result != ns::solver::SatResult::kUnknown;
  m.frequency_seconds =
      (m.frequency_solved ? static_cast<double>(q.stats.propagations)
                          : static_cast<double>(budget)) /
      props_per_second;
  return m;
}

}  // namespace

int main() {
  constexpr std::uint64_t kBudget = 500'000;  // the "5000 s" proxy timeout
  constexpr double kPropsPerSecond = 100.0;

  std::printf("=== Figure 4: default vs frequency-guided clause deletion ===\n");
  std::printf("timeout: %.0f proxy-seconds (%llu propagations)\n\n",
              static_cast<double>(kBudget) / kPropsPerSecond,
              static_cast<unsigned long long>(kBudget));
  std::printf("name,family,default_s,frequency_s,winner\n");

  const auto split = ns::gen::generate_split(2022, 48, /*seed_base=*/17);
  std::size_t wins = 0, losses = 0, ties = 0, both_timeout = 0;
  double sum_default = 0.0, sum_frequency = 0.0;
  for (const ns::gen::NamedInstance& inst : split) {
    const Measurement m = measure(inst.formula, kBudget, kPropsPerSecond);
    if (!m.default_solved && !m.frequency_solved) {
      ++both_timeout;  // excluded from the scatter, as in the paper
      continue;
    }
    const double rel =
        (m.default_seconds - m.frequency_seconds) / m.default_seconds;
    const char* winner = "tie";
    if (rel > 0.02) {
      winner = "frequency";
      ++wins;
    } else if (rel < -0.02) {
      winner = "default";
      ++losses;
    } else {
      ++ties;
    }
    sum_default += m.default_seconds;
    sum_frequency += m.frequency_seconds;
    std::printf("%s,%s,%.3f,%.3f,%s\n", inst.name.c_str(),
                inst.family.c_str(), m.default_seconds, m.frequency_seconds,
                winner);
  }

  std::printf("\nsummary: frequency wins %zu, default wins %zu, ties %zu, "
              "excluded (both timeout) %zu\n",
              wins, losses, ties, both_timeout);
  std::printf("total proxy runtime: default %.1f s, frequency %.1f s\n",
              sum_default, sum_frequency);
  std::printf("shape check: points on BOTH sides of the diagonal -> %s\n",
              (wins > 0 && losses > 0) ? "YES (matches paper)" : "NO");
  return 0;
}
