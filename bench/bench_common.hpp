#pragma once
/// Shared setup for the learning benches: builds the labelled dataset and
/// trains classifiers with one consistent configuration, so Table 2 and
/// Fig. 7/Table 3 are computed from the same experimental state.
///
/// Scale note: the paper trains 400 epochs at lr 1e-4 on GPU over 736
/// instances; these benches use fewer instances and epochs with a larger
/// learning rate so each bench finishes in minutes on a laptop CPU. The
/// pipeline (labelling rule, loss, optimizer, batch size 1) is unchanged.

#include <cstdio>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "core/trainer.hpp"
#include "gen/dataset.hpp"

namespace ns::bench {

/// Accumulates (name, threads, wall ms) measurements and writes them as a
/// JSON array to `BENCH_<bench>.json`, so successive PRs can track the perf
/// trajectory from checked-in bench output.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {}

  void record(const std::string& name, std::size_t threads, double wall_ms) {
    entries_.push_back(Entry{name, threads, wall_ms, 0.0});
  }

  /// Variant for thread sweeps: also records the speedup over the same
  /// workload's 1-thread run (emitted as `speedup_vs_1t`).
  void record(const std::string& name, std::size_t threads, double wall_ms,
              double speedup_vs_1t) {
    entries_.push_back(Entry{name, threads, wall_ms, speedup_vs_1t});
  }

  /// Writes `dir`/BENCH_<bench>.json; returns false if the file cannot be
  /// opened. Safe to call repeatedly (rewrites the whole file).
  bool write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"name\": \"%s\", "
                   "\"threads\": %zu, \"wall_ms\": %.3f",
                   bench_.c_str(), e.name.c_str(), e.threads, e.wall_ms);
      if (e.speedup_vs_1t > 0.0) {
        std::fprintf(f, ", \"speedup_vs_1t\": %.3f", e.speedup_vs_1t);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Entry {
    std::string name;
    std::size_t threads = 0;
    double wall_ms = 0.0;
    double speedup_vs_1t = 0.0;  ///< 0 when the entry is not a thread sweep
  };
  std::string bench_;
  std::vector<Entry> entries_;
};

struct LabeledDataset {
  std::vector<core::LabeledInstance> train;
  std::vector<core::LabeledInstance> test;
};

inline LabeledDataset build_labeled_dataset(std::size_t train_per_year,
                                            std::size_t test_count,
                                            std::uint64_t seed) {
  gen::Dataset ds = gen::build_dataset(train_per_year, seed);
  std::vector<gen::NamedInstance> test = gen::generate_split(2022, test_count, seed);
  core::LabelingOptions lopts;
  lopts.max_propagations = 500'000;
  LabeledDataset out;
  std::printf("labelling %zu train + %zu test instances "
              "(dual-policy solves)...\n",
              ds.train.size(), test.size());
  out.train = core::label_dataset(std::move(ds.train), lopts);
  out.test = core::label_dataset(std::move(test), lopts);
  std::printf("label balance: train %.1f%% positive, test %.1f%% positive\n\n",
              100.0 * core::positive_fraction(out.train),
              100.0 * core::positive_fraction(out.test));
  return out;
}

inline core::TrainOptions bench_train_options() {
  core::TrainOptions topts;
  topts.epochs = 40;
  topts.learning_rate = 5e-4f;
  topts.seed = 6;
  return topts;
}

/// Trains a classifier with collapse restarts: when the run ends in a
/// degenerate optimum (train accuracy below `threshold` — i.e. at or below
/// the majority-class rate), reinitialize with a fresh seed and retrain, up
/// to `max_attempts` times, keeping the best run by train accuracy. This is
/// the plain "restart on bad initialization" practice; model selection uses
/// only training data, never the test split.
inline std::unique_ptr<nn::SatClassifier> train_with_restarts(
    nn::ClassifierKind kind, const std::vector<core::LabeledInstance>& train,
    core::TrainOptions topts, double threshold = 0.70,
    int max_attempts = 3) {
  std::unique_ptr<nn::SatClassifier> best;
  double best_acc = -1.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::uint64_t seed = topts.seed + 3ull * attempt;
    auto model = nn::make_classifier(kind, seed);
    core::TrainOptions t = topts;
    t.seed = seed;
    core::train_classifier(*model, train, t);
    const double acc = core::evaluate_classifier(*model, train).accuracy;
    if (acc > best_acc) {
      best_acc = acc;
      best = std::move(model);
    }
    if (best_acc >= threshold) break;
  }
  return best;
}

}  // namespace ns::bench
