#pragma once
/// Shared setup for the learning benches: builds the labelled dataset and
/// trains classifiers with one consistent configuration, so Table 2 and
/// Fig. 7/Table 3 are computed from the same experimental state.
///
/// Scale note: the paper trains 400 epochs at lr 1e-4 on GPU over 736
/// instances; these benches use fewer instances and epochs with a larger
/// learning rate so each bench finishes in minutes on a laptop CPU. The
/// pipeline (labelling rule, loss, optimizer, batch size 1) is unchanged.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>  // getpid, for the temp-file suffix
#endif

#include "core/labeling.hpp"
#include "core/trainer.hpp"
#include "gen/dataset.hpp"
#include "runtime/annotations.hpp"

namespace ns::bench {

/// Accumulates (name, threads, wall ms) measurements and writes them as a
/// JSON array to `BENCH_<bench>.json`, so successive PRs can track the perf
/// trajectory from checked-in bench output.
///
/// Thread- and crash-safe: `record` may be called from pool workers (the
/// entry list is `NS_GUARDED_BY` the internal mutex), and every write goes
/// through a fresh temp file plus an atomic rename, so a reader — or a
/// concurrent/interrupted bench run sharing the file via `write_shared` —
/// can never observe a torn BENCH file.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : bench_(std::move(bench_name)) {}

  void record(const std::string& name, std::size_t threads, double wall_ms) {
    runtime::MutexLock lock(mutex_);
    entries_.push_back(Entry{name, threads, wall_ms, 0.0});
  }

  /// Variant for thread sweeps: also records the speedup over the same
  /// workload's 1-thread run (emitted as `speedup_vs_1t`).
  void record(const std::string& name, std::size_t threads, double wall_ms,
              double speedup_vs_1t) {
    runtime::MutexLock lock(mutex_);
    entries_.push_back(Entry{name, threads, wall_ms, speedup_vs_1t});
  }

  /// Writes `dir`/BENCH_<bench>.json; returns false if the file cannot be
  /// written. Safe to call repeatedly (rewrites the whole file).
  bool write(const std::string& dir = ".") const {
    runtime::MutexLock lock(mutex_);
    return write_file(dir, {}, /*preserved_first=*/false);
  }

  /// Merge-write for two benches sharing one BENCH file, partitioned by a
  /// row-name prefix. With `this_bench_owns_prefix`, rows under
  /// `name_prefix` are this run's to replace and every other existing row
  /// survives (and is emitted first); otherwise this run owns everything
  /// *except* the prefix and the prefixed rows survive (emitted last). The
  /// file stays line-oriented, one row object per line, so the partition
  /// can be recovered textually.
  bool write_shared(const std::string& name_prefix, bool this_bench_owns_prefix,
                    const std::string& dir = ".") const {
    const std::vector<std::string> preserved =
        read_rows(dir, name_prefix, /*keep_matching=*/!this_bench_owns_prefix);
    runtime::MutexLock lock(mutex_);
    return write_file(dir, preserved, /*preserved_first=*/this_bench_owns_prefix);
  }

 private:
  struct Entry {
    std::string name;
    std::size_t threads = 0;
    double wall_ms = 0.0;
    double speedup_vs_1t = 0.0;  ///< 0 when the entry is not a thread sweep
  };

  std::string path_in(const std::string& dir) const {
    return dir + "/BENCH_" + bench_ + ".json";
  }

  /// Reads the existing BENCH file and returns the row lines (without the
  /// array brackets or trailing commas) whose "name" value starts — or with
  /// `keep_matching == false` does not start — with `name_prefix`.
  std::vector<std::string> read_rows(const std::string& dir,
                                     const std::string& name_prefix,
                                     bool keep_matching) const {
    std::vector<std::string> rows;
    std::ifstream in(path_in(dir));
    if (!in) return rows;
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t key = line.find("\"name\": \"");
      if (key == std::string::npos) continue;  // "[" / "]" / malformed
      const bool matches =
          line.compare(key + 9, name_prefix.size(), name_prefix) == 0;
      if (matches != keep_matching) continue;
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      rows.push_back(line);
    }
    return rows;
  }

  /// Renders all rows into `<path>.tmp.<pid>` and renames it over the
  /// target: rename(2) is atomic within a filesystem, so the BENCH file is
  /// always either the old or the new content, never a torn mix — even if
  /// this run is interrupted mid-write or races another process.
  bool write_file(const std::string& dir,
                  const std::vector<std::string>& preserved,
                  bool preserved_first) const NS_REQUIRES(mutex_) {
    const std::string path = path_in(dir);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
#ifdef _WIN32
            0
#else
            static_cast<long>(getpid())
#endif
        );
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return false;
    std::vector<std::string> rows;
    rows.reserve(entries_.size() + preserved.size());
    if (preserved_first) rows = preserved;
    for (const Entry& e : entries_) {
      char buf[512];
      int n = std::snprintf(buf, sizeof buf,
                            "  {\"bench\": \"%s\", \"name\": \"%s\", "
                            "\"threads\": %zu, \"wall_ms\": %.3f",
                            bench_.c_str(), e.name.c_str(), e.threads,
                            e.wall_ms);
      std::string row(buf, static_cast<std::size_t>(n));
      if (e.speedup_vs_1t > 0.0) {
        n = std::snprintf(buf, sizeof buf, ", \"speedup_vs_1t\": %.3f",
                          e.speedup_vs_1t);
        row.append(buf, static_cast<std::size_t>(n));
      }
      row += '}';
      rows.push_back(std::move(row));
    }
    if (!preserved_first) {
      rows.insert(rows.end(), preserved.begin(), preserved.end());
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows[i].c_str(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  std::string bench_;
  mutable runtime::Mutex mutex_;
  std::vector<Entry> entries_ NS_GUARDED_BY(mutex_);
};

struct LabeledDataset {
  std::vector<core::LabeledInstance> train;
  std::vector<core::LabeledInstance> test;
};

inline LabeledDataset build_labeled_dataset(std::size_t train_per_year,
                                            std::size_t test_count,
                                            std::uint64_t seed) {
  gen::Dataset ds = gen::build_dataset(train_per_year, seed);
  std::vector<gen::NamedInstance> test = gen::generate_split(2022, test_count, seed);
  core::LabelingOptions lopts;
  lopts.max_propagations = 500'000;
  LabeledDataset out;
  std::printf("labelling %zu train + %zu test instances "
              "(dual-policy solves)...\n",
              ds.train.size(), test.size());
  out.train = core::label_dataset(std::move(ds.train), lopts);
  out.test = core::label_dataset(std::move(test), lopts);
  std::printf("label balance: train %.1f%% positive, test %.1f%% positive\n\n",
              100.0 * core::positive_fraction(out.train),
              100.0 * core::positive_fraction(out.test));
  return out;
}

inline core::TrainOptions bench_train_options() {
  core::TrainOptions topts;
  topts.epochs = 40;
  topts.learning_rate = 5e-4f;
  topts.seed = 6;
  return topts;
}

/// Trains a classifier with collapse restarts: when the run ends in a
/// degenerate optimum (train accuracy below `threshold` — i.e. at or below
/// the majority-class rate), reinitialize with a fresh seed and retrain, up
/// to `max_attempts` times, keeping the best run by train accuracy. This is
/// the plain "restart on bad initialization" practice; model selection uses
/// only training data, never the test split.
inline std::unique_ptr<nn::SatClassifier> train_with_restarts(
    nn::ClassifierKind kind, const std::vector<core::LabeledInstance>& train,
    core::TrainOptions topts, double threshold = 0.70,
    int max_attempts = 3) {
  std::unique_ptr<nn::SatClassifier> best;
  double best_acc = -1.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const std::uint64_t seed = topts.seed + 3ull * attempt;
    auto model = nn::make_classifier(kind, seed);
    core::TrainOptions t = topts;
    t.seed = seed;
    core::train_classifier(*model, train, t);
    const double acc = core::evaluate_classifier(*model, train).accuracy;
    if (acc > best_acc) {
      best_acc = acc;
      best = std::move(model);
    }
    if (best_acc >= threshold) break;
  }
  return best;
}

}  // namespace ns::bench
