/// \file bench_table2_classifier_comparison.cpp
/// Reproduces paper Table 2: precision / recall / F1 / accuracy of four SAT
/// instance classifiers on the 2022 test split — NeuroSAT, G4SATBench-GIN,
/// NeuroSelect without the attention block (ablation, Sec. 5.3), and full
/// NeuroSelect. Expected shape: NeuroSelect best overall, the attention
/// block worth several accuracy points, both graph-transformer variants
/// above the two baselines.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "nn/models.hpp"

int main() {
  const ns::bench::LabeledDataset data =
      ns::bench::build_labeled_dataset(/*train_per_year=*/12, /*test_count=*/36, /*seed=*/17);

  const ns::nn::ClassifierKind kinds[] = {
      ns::nn::ClassifierKind::kNeuroSat,
      ns::nn::ClassifierKind::kGin,
      ns::nn::ClassifierKind::kNeuroSelectNoAttention,
      ns::nn::ClassifierKind::kNeuroSelect,
  };

  std::printf("=== Table 2: performance of SAT classification models ===\n\n");
  std::printf("%-28s %-10s %-10s %-10s %-10s\n", "model", "precision",
              "recall", "F1", "accuracy");

  double acc_with_attention = 0.0, acc_without_attention = 0.0;
  for (const ns::nn::ClassifierKind kind : kinds) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto model = ns::bench::train_with_restarts(
        kind, data.train, ns::bench::bench_train_options());
    const auto t1 = std::chrono::steady_clock::now();
    const ns::core::ClassificationMetrics m =
        ns::core::evaluate_classifier(*model, data.test);
    std::printf("%-28s %-10.2f %-10.2f %-10.2f %-10.2f  (train %.0fs)\n",
                std::string(model->name()).c_str(), 100.0 * m.precision,
                100.0 * m.recall, 100.0 * m.f1, 100.0 * m.accuracy,
                std::chrono::duration<double>(t1 - t0).count());
    if (kind == ns::nn::ClassifierKind::kNeuroSelect) {
      acc_with_attention = m.accuracy;
    }
    if (kind == ns::nn::ClassifierKind::kNeuroSelectNoAttention) {
      acc_without_attention = m.accuracy;
    }
  }

  std::printf("\nablation (Sec. 5.3): attention block contributes %+.1f "
              "accuracy points\n",
              100.0 * (acc_with_attention - acc_without_attention));
  return 0;
}
