/// \file bench_micro_solver.cpp
/// Google-benchmark microbenches of the CDCL substrate: end-to-end solve
/// throughput per family, and the overhead the frequency-guided policy adds
/// to a reduction pass (the paper claims the new criterion is cheap: one
/// counter per variable plus one extra pass at reduce time).

#include <benchmark/benchmark.h>

#include "cnf/dimacs.hpp"
#include "gen/generators.hpp"
#include "solver/solver.hpp"

namespace {

void solve_with(const ns::CnfFormula& f, ns::policy::PolicyKind kind,
                benchmark::State& state) {
  ns::solver::SolverOptions opts;
  opts.deletion_policy = kind;
  std::uint64_t conflicts = 0;
  for (auto _ : state) {
    const ns::solver::SolveOutcome out = ns::solver::solve_formula(f, opts);
    benchmark::DoNotOptimize(out.result);
    conflicts += out.stats.conflicts;
  }
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(conflicts),
                         benchmark::Counter::kIsRate);
}

void BM_SolvePigeonholeDefault(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::pigeonhole(8, 7);
  solve_with(f, ns::policy::PolicyKind::kDefault, state);
}
BENCHMARK(BM_SolvePigeonholeDefault)->Unit(benchmark::kMillisecond);

void BM_SolvePigeonholeFrequency(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::pigeonhole(8, 7);
  solve_with(f, ns::policy::PolicyKind::kFrequency, state);
}
BENCHMARK(BM_SolvePigeonholeFrequency)->Unit(benchmark::kMillisecond);

void BM_SolveRandom3SatDefault(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::random_ksat(120, 511, 3, 4);
  solve_with(f, ns::policy::PolicyKind::kDefault, state);
}
BENCHMARK(BM_SolveRandom3SatDefault)->Unit(benchmark::kMillisecond);

void BM_SolveRandom3SatFrequency(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::random_ksat(120, 511, 3, 4);
  solve_with(f, ns::policy::PolicyKind::kFrequency, state);
}
BENCHMARK(BM_SolveRandom3SatFrequency)->Unit(benchmark::kMillisecond);

void BM_SolveMiter(benchmark::State& state) {
  const ns::CnfFormula f =
      ns::gen::adder_equivalence(static_cast<std::size_t>(state.range(0)),
                                 /*inject_bug=*/false, 1);
  solve_with(f, ns::policy::PolicyKind::kDefault, state);
}
BENCHMARK(BM_SolveMiter)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

// BCP throughput on a propagation-heavy instance (XOR chain: every decision
// triggers a long implication chain).
void BM_BcpThroughput(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::xor_chain(2000, false, 3);
  ns::solver::SolverOptions opts;
  std::uint64_t props = 0;
  for (auto _ : state) {
    const ns::solver::SolveOutcome out = ns::solver::solve_formula(f, opts);
    props += out.stats.propagations;
    benchmark::DoNotOptimize(out.result);
  }
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BcpThroughput)->Unit(benchmark::kMillisecond);

// Pure DIMACS parse throughput (I/O substrate).
void BM_DimacsRoundTrip(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::random_ksat(500, 2100, 3, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns::to_dimacs_string(f));
  }
}
BENCHMARK(BM_DimacsRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
