/// \file bench_micro_solver.cpp
/// Google-benchmark microbenches of the CDCL substrate: end-to-end solve
/// throughput per family, and the overhead the frequency-guided policy adds
/// to a reduction pass (the paper claims the new criterion is cheap: one
/// counter per variable plus one extra pass at reduce time).
///
/// Also the solver-side twin of bench_inference_latency's zero-allocation
/// check: a counting-allocator window over a warm 100-query incremental
/// stream (`materialize_results = false`, results read through the
/// engine-owned buffers) must perform zero heap allocations — the dynamic
/// cross-check of the [allocation] closure ns::hotlint gates statically.
/// The count lands in BENCH_solver_hot_path.json as
/// `incremental/stream100_steady_allocs` and, at NS_CHECK=0, a nonzero
/// count fails the process.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>

#include "audit/audit.hpp"
#include "bench_common.hpp"
#include "cnf/dimacs.hpp"
#include "gen/generators.hpp"
#include "solver/solver.hpp"

// --- counting allocator (whole-TU override) -------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The replaced operator new above is malloc-backed, so free() IS the
// matching deallocation; GCC pairs the replaced `::operator new` symbol
// with free() and reports a false mismatch when vector destructors inline.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

void solve_with(const ns::CnfFormula& f, ns::policy::PolicyKind kind,
                benchmark::State& state) {
  ns::solver::SolverOptions opts;
  opts.deletion_policy = kind;
  std::uint64_t conflicts = 0;
  for (auto _ : state) {
    const ns::solver::SolveOutcome out = ns::solver::solve_formula(f, opts);
    benchmark::DoNotOptimize(out.result);
    conflicts += out.stats.conflicts;
  }
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(conflicts),
                         benchmark::Counter::kIsRate);
}

void BM_SolvePigeonholeDefault(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::pigeonhole(8, 7);
  solve_with(f, ns::policy::PolicyKind::kDefault, state);
}
BENCHMARK(BM_SolvePigeonholeDefault)->Unit(benchmark::kMillisecond);

void BM_SolvePigeonholeFrequency(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::pigeonhole(8, 7);
  solve_with(f, ns::policy::PolicyKind::kFrequency, state);
}
BENCHMARK(BM_SolvePigeonholeFrequency)->Unit(benchmark::kMillisecond);

void BM_SolveRandom3SatDefault(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::random_ksat(120, 511, 3, 4);
  solve_with(f, ns::policy::PolicyKind::kDefault, state);
}
BENCHMARK(BM_SolveRandom3SatDefault)->Unit(benchmark::kMillisecond);

void BM_SolveRandom3SatFrequency(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::random_ksat(120, 511, 3, 4);
  solve_with(f, ns::policy::PolicyKind::kFrequency, state);
}
BENCHMARK(BM_SolveRandom3SatFrequency)->Unit(benchmark::kMillisecond);

void BM_SolveMiter(benchmark::State& state) {
  const ns::CnfFormula f =
      ns::gen::adder_equivalence(static_cast<std::size_t>(state.range(0)),
                                 /*inject_bug=*/false, 1);
  solve_with(f, ns::policy::PolicyKind::kDefault, state);
}
BENCHMARK(BM_SolveMiter)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

// BCP throughput on a propagation-heavy instance (XOR chain: every decision
// triggers a long implication chain).
void BM_BcpThroughput(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::xor_chain(2000, false, 3);
  ns::solver::SolverOptions opts;
  std::uint64_t props = 0;
  for (auto _ : state) {
    const ns::solver::SolveOutcome out = ns::solver::solve_formula(f, opts);
    props += out.stats.propagations;
    benchmark::DoNotOptimize(out.result);
  }
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BcpThroughput)->Unit(benchmark::kMillisecond);

// Pure DIMACS parse throughput (I/O substrate).
void BM_DimacsRoundTrip(benchmark::State& state) {
  const ns::CnfFormula f = ns::gen::random_ksat(500, 2100, 3, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns::to_dimacs_string(f));
  }
}
BENCHMARK(BM_DimacsRoundTrip)->Unit(benchmark::kMillisecond);

// Checked-in BCP hot-path trajectory (BENCH_solver_hot_path.json): wall
// time and tick throughput of full deterministic solves on three
// propagation-bound instances. The "seed/" rows are the pre-refactor
// engine (vector-of-vectors watchers, no binary specialization) measured
// on this same suite; "flat_arena/" rows are re-measured on every run, so
// the checked-in JSON tracks the hot path across PRs.
std::size_t run_hot_path_trajectory() {
  ns::bench::BenchJson json("solver_hot_path");
  json.record("seed/xor_chain_2000_mticks_per_s", 1, 9.91);
  json.record("seed/php_9_8_mticks_per_s", 1, 45.21);
  json.record("seed/ksat_150_645_mticks_per_s", 1, 28.88);

  struct Case {
    const char* name;
    ns::CnfFormula f;
  };
  const Case cases[] = {
      {"xor_chain_2000", ns::gen::xor_chain(2000, false, 3)},
      {"php_9_8", ns::gen::pigeonhole(9, 8)},
      {"ksat_150_645", ns::gen::random_ksat(150, 645, 3, 4)},
  };
  std::printf("=== BCP hot path (deterministic solves, best of 3) ===\n");
  for (const Case& c : cases) {
    double best_ms = 1e300;
    std::uint64_t ticks = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const ns::solver::SolveOutcome out =
          ns::solver::solve_formula(c.f, ns::solver::SolverOptions{});
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      best_ms = std::min(best_ms, ms);
      ticks = out.stats.ticks;
    }
    const double mticks_s = static_cast<double>(ticks) / (best_ms * 1000.0);
    json.record(std::string("flat_arena/") + c.name + "_wall_ms", 1, best_ms);
    json.record(std::string("flat_arena/") + c.name + "_mticks_per_s", 1,
                mticks_s);
    std::printf("%-16s %10.3f ms  %12llu ticks  %7.2f Mticks/s\n", c.name,
                best_ms, static_cast<unsigned long long>(ticks), mticks_s);
  }
  // Incremental query streams: 100 assumption queries against one loaded
  // engine (decision heuristics and learned clauses stay warm), eager GC
  // vs deferred GC compacting at a 30% dead fraction. The same stream
  // solved with throwaway engines is the baseline the incremental API is
  // meant to beat.
  std::printf("=== incremental query stream (100 queries, best of 3) ===\n");
  const ns::CnfFormula sf = ns::gen::random_ksat(150, 630, 3, 21);
  struct Mode {
    const char* name;
    double gc_frac;
    bool fresh_per_query;
  };
  const Mode modes[] = {
      {"stream100_eager", 0.0, false},
      {"stream100_gc", 0.3, false},
      {"stream100_fresh", 0.0, true},
  };
  for (const Mode& m : modes) {
    double best_ms = 1e300;
    std::uint64_t conflicts = 0;
    std::uint64_t collections = 0;
    for (int rep = 0; rep < 3; ++rep) {
      ns::solver::SolverOptions opts;
      opts.reduce_interval = 10;
      opts.reduce_interval_inc = 0;
      opts.gc_frac = m.gc_frac;
      const auto t0 = std::chrono::steady_clock::now();
      ns::solver::Solver engine{opts};
      if (!m.fresh_per_query) engine.load(sf);
      for (int q = 0; q < 100; ++q) {
        const std::vector<ns::Lit> assume = {
            ns::Lit(static_cast<ns::Var>((q * 7 + 1) % sf.num_vars()),
                    q % 2 == 0),
            ns::Lit(static_cast<ns::Var>((q * 13 + 5) % sf.num_vars()),
                    q % 3 == 0)};
        if (m.fresh_per_query) engine.load(sf);
        benchmark::DoNotOptimize(engine.solve(assume).result);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      best_ms = std::min(best_ms, ms);
      conflicts = engine.stats().conflicts;
      collections = engine.stats().garbage_collections;
    }
    json.record(std::string("incremental/") + m.name + "_wall_ms", 1,
                best_ms);
    json.record(std::string("incremental/") + m.name + "_queries_per_s", 1,
                100.0 / (best_ms / 1000.0));
    std::printf("%-18s %10.3f ms  %8llu conflicts  %3llu collections\n",
                m.name, best_ms, static_cast<unsigned long long>(conflicts),
                static_cast<unsigned long long>(collections));
  }
  // Steady-state allocation window: re-run the warm stream with result
  // materialization off (model/core read through the engine-owned buffers)
  // and count global operator-new calls across one full 100-query pass.
  // Warm passes run first until the clause arena and every side buffer
  // reach their high-water capacity — the deterministic engine reaches an
  // allocation-free fixed point within a few passes — then the measured
  // window must be exactly zero.
  std::size_t steady_allocs = 0;
  {
    ns::solver::SolverOptions opts;
    opts.reduce_interval = 10;
    opts.reduce_interval_inc = 0;
    opts.materialize_results = false;
    ns::solver::Solver engine{opts};
    engine.load(sf);
    std::vector<ns::Lit> assume(2, ns::Lit(0, false));
    const auto stream = [&]() {
      const std::size_t before =
          g_alloc_count.load(std::memory_order_relaxed);
      for (int q = 0; q < 100; ++q) {
        assume[0] = ns::Lit(static_cast<ns::Var>((q * 7 + 1) % sf.num_vars()),
                            q % 2 == 0);
        assume[1] = ns::Lit(static_cast<ns::Var>((q * 13 + 5) % sf.num_vars()),
                            q % 3 == 0);
        benchmark::DoNotOptimize(engine.solve(assume).result);
      }
      return g_alloc_count.load(std::memory_order_relaxed) - before;
    };
    for (int warm = 0; warm < 8 && stream() != 0; ++warm) {
    }
    steady_allocs = stream();
  }
  json.record("incremental/stream100_steady_allocs", 1,
              static_cast<double>(steady_allocs));
  std::printf("stream100_steady_allocs %zu (0 expected)\n", steady_allocs);
  if (!json.write()) {
    std::fprintf(stderr, "failed to write BENCH_solver_hot_path.json\n");
  }
  std::printf("\n");
  return steady_allocs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steady_allocs = run_hot_path_trajectory();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (steady_allocs != 0) {
    if constexpr (ns::audit::kCheckLevel == 0) {
      std::fprintf(stderr,
                   "FAIL: warm incremental stream allocated %zu time(s) in "
                   "steady state\n",
                   steady_allocs);
      return 1;
    }
    std::fprintf(stderr,
                 "note: %zu steady-state allocation(s) tolerated at "
                 "NS_CHECK=%d (audit checkpoints allocate)\n",
                 steady_allocs, ns::audit::kCheckLevel);
  }
  return 0;
}
